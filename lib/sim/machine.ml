open Stx_tir
open Stx_machine
open Stx_compiler
open Stx_htm
open Stx_core
module Stm = Stx_stm.Stm

exception Sim_error of string

let trap fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

type abort_kind =
  | Conflict
  | Lock_subscription
  | Capacity
  | Explicit
  | Stm_conflict (* a software-tier commit published into the footprint *)

type stm_abort_kind = Stm_validation | Stm_hw_owned | Stm_locksub | Stm_explicit

type event =
  | Tx_begin of { tid : int; ab : int; attempt : int; probe : bool }
  | Tx_commit of {
      tid : int;
      ab : int;
      cycles : int;
      irrevocable : bool;
      rset : int;
      wset : int;
      probe : bool;
    }
  | Tx_abort of {
      tid : int;
      ab : int;
      kind : abort_kind;
      conf_line : int option;
      conf_pc : int option;
      aggressor : int option;
      cycles : int;
      rset : int;
      wset : int;
      probe : bool;
    }
  | Tx_irrevocable of { tid : int; ab : int }
  | Alp_executed of { tid : int; ab : int; site : int; fired : bool }
  | Lock_attempt of { tid : int; lock : int; line : int }
  | Lock_acquired of { tid : int; lock : int; line : int }
  | Lock_released of { tid : int; lock : int; committed : bool }
  | Lock_waiting of { tid : int; lock : int }
  | Lock_timeout of { tid : int; lock : int }
  | Backoff_start of { tid : int }
  | Backoff_end of { tid : int }
  | Req_dispatch of { tid : int; req : int; ab : int }
  | Req_done of { tid : int; req : int; ab : int }
  | Stm_begin of { tid : int; ab : int; attempt : int }
  | Stm_commit of {
      tid : int;
      ab : int;
      cycles : int;
      vcycles : int; (* version-word traffic charged at commit *)
      rset : int;
      wset : int;
    }
  | Stm_abort of {
      tid : int;
      ab : int;
      kind : stm_abort_kind;
      cycles : int;
      vcycles : int;
      rset : int;
      wset : int;
    }

type injection =
  | Inject of { req : int; ab : int; args : int array }
  | Idle_until of int
  | Drained

type setup_env = { memory : Memory.t; alloc : Alloc.t; setup_rng : Stx_util.Rng.t }

type spec = {
  compiled : Pipeline.t;
  thread_main : string;
  thread_args : setup_env -> threads:int -> int array array;
}

(* A function plus its resolved jump table: [ttgt.(2*bi)] / [ttgt.(2*bi+1)]
   are the block indexes of block [bi]'s Jmp / Br targets (-1 unused), so
   taking a branch never re-scans block labels. Resolved lazily, once per
   call site / atomic block, and cached. *)
type tgt = { tfn : Ir.func; ttgt : int array }

let resolve_targets (fn : Ir.func) =
  let n = Array.length fn.Ir.blocks in
  let t = Array.make (2 * n) (-1) in
  for bi = 0 to n - 1 do
    match fn.Ir.blocks.(bi).Ir.term with
    | Ir.Jmp l -> t.(2 * bi) <- Ir.block_index fn l
    | Ir.Br (_, l1, l2) ->
      t.(2 * bi) <- Ir.block_index fn l1;
      t.(2 * bi + 1) <- Ir.block_index fn l2
    | Ir.Ret _ -> ()
  done;
  t

(* Call frames live in a per-thread pool indexed by depth: a call reuses
   the record (and its register array) left by the last frame at that
   depth, so the steady state pushes and pops without allocating. *)
type frame = {
  mutable func : Ir.func;
  mutable tgt : int array; (* the func's resolved jump table *)
  mutable bi : int;
  mutable insts : Ir.inst array; (* blocks.(bi).insts, cached at block entry *)
  mutable ip : int;
  mutable regs : int array; (* live prefix [0, func.nregs), zeroed on push *)
  mutable ret_dst : int; (* destination register in the parent frame; -1 none *)
}

type wait = Lock_spin of { idx : int; line : int; deadline : int } | Global_spin

(* One pooled record per thread, reset by [start_atomic]; [tx_active] on
   the thread plays the role the option wrapper used to. *)
type txstate = {
  mutable tx_ab : int;
  mutable tx_dst : int; (* destination register in the caller; -1 none *)
  mutable tx_args : int array; (* live prefix [0, tx_nargs) *)
  mutable tx_nargs : int;
  mutable tx_base_depth : int;
  mutable tx_attempt : int;
  mutable tx_start : int;
  mutable tx_insts : int; (* instructions in the current attempt *)
  mutable tx_lock : int; (* advisory lock index; -1 none *)
  mutable tx_held_lock : bool; (* a lock was held at some point this attempt *)
  mutable tx_is_probe : bool; (* this attempt deliberately skipped its ALP *)
  mutable tx_irrevocable : bool;
  mutable tx_stm : bool; (* attempt runs on the software tier *)
  mutable tx_stm_attempts : int; (* software attempts so far *)
}

type thread = {
  tid : int;
  mutable time : int;
  mutable frames : frame array; (* pooled call stack; live prefix [0, depth) *)
  mutable depth : int;
  mutable argbuf : int array; (* call-argument scratch, fully consumed by push *)
  mutable finished : bool;
  mutable wait : wait option;
  txs : txstate;
  mutable tx_active : bool;
  rng : Stx_util.Rng.t;
  backoff_rng : Stx_util.Rng.t;
      (* dedicated stream for the Backoff fallback policy, so the backoff
         schedule never perturbs the workload's own random choices *)
  mutable cur_req : int; (* request being served under an injector; -1 idle *)
  contexts : Abcontext.t array;
  softcpc : Softcpc.t;
}

type m = {
  cfg : Config.t;
  mode : Mode.t;
  policy : Policy.params;
  htm_policy : Stx_policy.t;
  retry_budget : int; (* hardware attempts before going irrevocable *)
  lock_timeout : int;
  max_waiters : int;
  compiled : Pipeline.t;
  memory : Memory.t;
  hier : Hierarchy.t;
  htm : Htm.t;
  stm : Stm.t option; (* software tier, Stm_tier fallback only *)
  stm_retries : int; (* software attempts before the global lock *)
  locks : Advisory_lock.t;
  threads : thread array;
  allocator : Alloc.t;
  stats : Stats.t;
  evt : bool; (* an [on_event] consumer exists: build and emit events *)
  on_event : time:int -> event -> unit;
  injector : (tid:int -> now:int -> injection) option;
  callee : tgt option array; (* per call-site iid: resolved callee *)
  ab_roots : tgt option array; (* per atomic block: resolved root function *)
  pcs : int array; (* per load/store iid: truncated PC (min_int unresolved) *)
  ssizes : int array; (* per alloc iid: struct size in words (-1 unresolved) *)
  line_shift : int; (* log2 words_per_line, -1 when not a power of two *)
  mutable steps : int;
  max_steps : int;
}

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

let wpl m = m.cfg.Config.words_per_line

let shift_of_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let rec go s v = if v <= 1 then s else go (s + 1) (v lsr 1) in
    go 0 n
  end
  else -1

(* hot enough that the division is worth dodging: every memory access
   computes its line at least twice (latency charge + HTM set lookup) *)
let line_of m addr =
  if m.line_shift >= 0 then addr lsr m.line_shift else addr / wpl m

let emit m (th : thread) ev = m.on_event ~time:th.time ev

let in_tx th = th.tx_active

let speculative th =
  th.tx_active && (not th.txs.tx_irrevocable) && not th.txs.tx_stm

let stm_active th = th.tx_active && th.txs.tx_stm

let the_stm m =
  match m.stm with
  | Some stm -> stm
  | None -> trap "software tier used without the htm-stm-lock fallback"

let charge m th c =
  th.time <- th.time + c;
  if in_tx th then m.stats.Stats.tx_mode_cycles <- m.stats.Stats.tx_mode_cycles + c

let frame_of th =
  if th.depth = 0 then trap "thread %d has no frame" th.tid
  else th.frames.(th.depth - 1)

let ev (f : frame) = function Ir.Reg r -> f.regs.(r) | Ir.Imm n -> n

let check_addr m addr =
  if addr < wpl m then trap "invalid memory access at address %d (null page)" addr

let mem_latency m th ~addr ~write =
  Hierarchy.access m.hier ~core:th.tid ~line:(line_of m addr) ~write

let callee_of m iid g =
  match m.callee.(iid) with
  | Some tg -> tg
  | None ->
    let fn = Ir.find_func m.compiled.Pipeline.prog g in
    let tg = { tfn = fn; ttgt = resolve_targets fn } in
    m.callee.(iid) <- Some tg;
    tg

let ab_root m ab =
  match m.ab_roots.(ab) with
  | Some tg -> tg
  | None ->
    let fn =
      Ir.find_func m.compiled.Pipeline.prog
        m.compiled.Pipeline.prog.Ir.atomics.(ab).Ir.ab_func
    in
    let tg = { tfn = fn; ttgt = resolve_targets fn } in
    m.ab_roots.(ab) <- Some tg;
    tg

(* struct sizes are looked up by name in the program; memoize per site
   so repeated allocations skip the string search *)
let ssize_of m iid sname =
  let s = m.ssizes.(iid) in
  if s >= 0 then s
  else begin
    let s = Types.size (Ir.find_struct m.compiled.Pipeline.prog sname) in
    m.ssizes.(iid) <- s;
    s
  end

let pc_of m iid =
  let p = m.pcs.(iid) in
  if p <> min_int then p
  else begin
    let p = Layout.pc_of_iid m.compiled.Pipeline.layout iid in
    m.pcs.(iid) <- p;
    p
  end

let grow_frames th =
  let old = th.frames in
  let n = Array.length old in
  let tpl = old.(0) in
  th.frames <-
    Array.init (2 * n) (fun i ->
        if i < n then old.(i)
        else
          {
            func = tpl.func;
            tgt = tpl.tgt;
            bi = 0;
            insts = tpl.insts;
            ip = 0;
            regs = Array.make 8 0;
            ret_dst = -1;
          })

let push_frame th (tg : tgt) args nargs ret_dst =
  if th.depth >= Array.length th.frames then grow_frames th;
  let fr = th.frames.(th.depth) in
  let fn = tg.tfn in
  let nregs = max fn.Ir.nregs 1 in
  if Array.length fr.regs < nregs then
    fr.regs <- Array.make (max nregs (2 * Array.length fr.regs)) 0
  else Array.fill fr.regs 0 nregs 0;
  Array.blit args 0 fr.regs 0 nargs;
  fr.func <- fn;
  fr.tgt <- tg.ttgt;
  fr.bi <- 0;
  fr.insts <- fn.Ir.blocks.(0).Ir.insts;
  fr.ip <- 0;
  fr.ret_dst <- ret_dst;
  th.depth <- th.depth + 1

(* evaluate call arguments into [th.argbuf] (growing it as needed) and
   return the count — replaces a list map that allocated per call *)
let rec eval_args th f i = function
  | [] -> i
  | a :: rest ->
    if i >= Array.length th.argbuf then begin
      let nu = Array.make (2 * Array.length th.argbuf) 0 in
      Array.blit th.argbuf 0 nu 0 i;
      th.argbuf <- nu
    end;
    th.argbuf.(i) <- ev f a;
    eval_args th f (i + 1) rest

(* ------------------------------------------------------------------ *)
(* advisory lock acquisition (the body of AcquireLockFor)              *)

let request_lock m th ~addr =
  if th.tx_active then begin
    let tx = th.txs in
    if tx.tx_lock < 0 then begin
      m.stats.Stats.alps_lock_attempts <- m.stats.Stats.alps_lock_attempts + 1;
      let idx = Advisory_lock.index_for m.locks ~addr in
      if m.evt then
        emit m th (Lock_attempt { tid = th.tid; lock = idx; line = line_of m addr });
      let cost =
        mem_latency m th ~addr:(Advisory_lock.lock_addr m.locks idx) ~write:true
      in
      charge m th cost;
      if Advisory_lock.try_acquire m.locks ~core:th.tid ~idx then begin
        tx.tx_lock <- idx;
        tx.tx_held_lock <- true;
        m.stats.Stats.lock_acquires <- m.stats.Stats.lock_acquires + 1;
        (Stats.ab m.stats tx.tx_ab).Stats.ab_locks
        <- (Stats.ab m.stats tx.tx_ab).Stats.ab_locks + 1;
        if m.evt then
          emit m th (Lock_acquired { tid = th.tid; lock = idx; line = line_of m addr })
      end
      else begin
        (* keep the stagger shallow: a bounded number of spinners may queue;
           the rest run speculatively (Figure 1 staggers transactions, it
           does not funnel every thread through one lock — and under
           requester-wins an unbounded convoy would trade all parallelism
           for the lock holder's safety) *)
        if Advisory_lock.waiters m.locks ~idx >= m.max_waiters then ()
        else begin
          Advisory_lock.add_waiter m.locks ~idx;
          th.wait <-
            Some
              (Lock_spin
                 { idx; line = line_of m addr; deadline = th.time + m.lock_timeout });
          if m.evt then emit m th (Lock_waiting { tid = th.tid; lock = idx })
        end
      end
    end
  end

let release_lock m th ~committed =
  if th.tx_active then begin
    let tx = th.txs in
    if tx.tx_lock >= 0 then begin
      let idx = tx.tx_lock in
      let contended = ref false in
      Advisory_lock.release m.locks ~core:th.tid ~idx ~contended;
      tx.tx_lock <- -1;
      charge m th (mem_latency m th ~addr:(Advisory_lock.lock_addr m.locks idx) ~write:true);
      if m.evt then emit m th (Lock_released { tid = th.tid; lock = idx; committed });
      if committed && not !contended then
        Policy.on_commit_uncontended_lock m.policy th.contexts.(tx.tx_ab)
    end
  end

(* ------------------------------------------------------------------ *)
(* transaction protocol                                                *)

let begin_attempt m th =
  if th.tx_active then begin
    let tx = th.txs in
    push_frame th (ab_root m tx.tx_ab) tx.tx_args tx.tx_nargs tx.tx_dst;
    tx.tx_start <- th.time;
    tx.tx_insts <- 0;
    tx.tx_held_lock <- false;
    charge m th 5;
    if tx.tx_stm then begin
      (* software-tier attempts skip the ALP machinery: the stagger is a
         hardware-contention device; the software tier already serializes
         through validation *)
      Stm.tx_begin (the_stm m) ~core:th.tid;
      if m.evt then
        emit m th
          (Stm_begin { tid = th.tid; ab = tx.tx_ab; attempt = tx.tx_attempt })
    end
    else if not tx.tx_irrevocable then begin
      (* a retry keeps its begin timestamp: under the Timestamp resolution
         policy an aborted transaction ages into priority *)
      Htm.tx_begin ~fresh:(tx.tx_attempt = 0) m.htm ~core:th.tid;
      let ctx = th.contexts.(tx.tx_ab) in
      Abcontext.on_tx_begin ctx;
      (* speculation probe: periodically run without the ALP to re-measure
         whether the serialization is still earning its keep *)
      if
        tx.tx_attempt = 0
        && Abcontext.probe_due ctx ~period:m.policy.Policy.probe_period
      then begin
        ctx.Abcontext.active_site <- Abcontext.no_site;
        tx.tx_is_probe <- true
      end;
      if m.evt then
        emit m th
          (Tx_begin
             {
               tid = th.tid;
               ab = tx.tx_ab;
               attempt = tx.tx_attempt;
               probe = tx.tx_is_probe;
             });
      (* AddrOnly and TxSched place their single pseudo-ALP at the very
         top of the atomic block *)
      (match m.mode with
      | Mode.Addr_only ->
        if
          ctx.Abcontext.active_site = Abcontext.entry_site
          && ctx.Abcontext.block_addr <> 0
        then begin
          ignore (Abcontext.consume_active ctx ~site:Abcontext.entry_site);
          request_lock m th ~addr:ctx.Abcontext.block_addr
        end
      | Mode.Tx_sched ->
        if ctx.Abcontext.active_site = Abcontext.entry_site then begin
          ignore (Abcontext.consume_active ctx ~site:Abcontext.entry_site);
          (* one lock per atomic block: a synthetic line per block id *)
          request_lock m th
            ~addr:((tx.tx_ab + 1) * m.cfg.Config.words_per_line)
        end
      | Mode.Baseline | Mode.Staggered_sw | Mode.Staggered_hw -> ())
    end
    else if
      (* irrevocable attempts begin too: the trace needs a uniform
         begin/commit bracket per attempt, speculative or not *)
      m.evt
    then
      emit m th
        (Tx_begin
           { tid = th.tid; ab = tx.tx_ab; attempt = tx.tx_attempt; probe = false })
  end

let start_atomic m th ~ab ~dst ~args ~nargs =
  let tx = th.txs in
  tx.tx_ab <- ab;
  tx.tx_dst <- dst;
  if Array.length tx.tx_args < nargs then tx.tx_args <- Array.make (max 8 nargs) 0;
  Array.blit args 0 tx.tx_args 0 nargs;
  tx.tx_nargs <- nargs;
  tx.tx_base_depth <- th.depth;
  tx.tx_attempt <- 0;
  tx.tx_start <- th.time;
  tx.tx_insts <- 0;
  tx.tx_lock <- -1;
  tx.tx_held_lock <- false;
  tx.tx_is_probe <- false;
  tx.tx_irrevocable <- false;
  tx.tx_stm <- false;
  tx.tx_stm_attempts <- 0;
  th.tx_active <- true;
  begin_attempt m th

let pop_to_base th (tx : txstate) =
  if th.depth > tx.tx_base_depth then th.depth <- tx.tx_base_depth

let finish_tx m th (tx : txstate) ~rset ~wset retval =
  th.tx_active <- false;
  if tx.tx_dst >= 0 && th.depth > 0 then
    th.frames.(th.depth - 1).regs.(tx.tx_dst) <- retval;
  (* decision (1) is about the FREQUENCY of contention aborts: conflict-free
     commits while no ALP is armed push empty records through the history,
     so arming demands aborts dense in recent transactions, not merely
     accumulated over a lifetime. A commit of an armed transaction that did
     not end up holding its lock (a probe, or an address mismatch) decays
     the armed evidence the same way an uncontended lock does. *)
  (if (match m.mode with Mode.Baseline -> false | _ -> true) then
     let ctx = th.contexts.(tx.tx_ab) in
     if ctx.Abcontext.armed_site = Abcontext.no_site then Abcontext.append ctx None
     else if tx.tx_is_probe then Policy.on_probe_commit ctx
     else if not tx.tx_held_lock then Policy.on_commit_uncontended_lock m.policy ctx);
  m.stats.Stats.commits <- m.stats.Stats.commits + 1;
  m.stats.Stats.useful_cycles <- m.stats.Stats.useful_cycles + (th.time - tx.tx_start);
  m.stats.Stats.committed_tx_insts <- m.stats.Stats.committed_tx_insts + tx.tx_insts;
  let ab = Stats.ab m.stats tx.tx_ab in
  ab.Stats.ab_commits <- ab.Stats.ab_commits + 1;
  if tx.tx_irrevocable then ab.Stats.ab_irrevocable <- ab.Stats.ab_irrevocable + 1;
  if m.evt then
    emit m th
      (Tx_commit
         {
           tid = th.tid;
           ab = tx.tx_ab;
           cycles = th.time - tx.tx_start;
           irrevocable = tx.tx_irrevocable;
           rset;
           wset;
           probe = tx.tx_is_probe;
         });
  if th.cur_req >= 0 then begin
    if m.evt then
      emit m th (Req_done { tid = th.tid; req = th.cur_req; ab = tx.tx_ab });
    th.cur_req <- -1
  end

(* a software-tier commit: same bookkeeping as a hardware commit minus
   the ALP history (software attempts never arm or probe) *)
let finish_stm_tx m th (tx : txstate) ~rset ~wset ~vcycles retval =
  th.tx_active <- false;
  if tx.tx_dst >= 0 && th.depth > 0 then
    th.frames.(th.depth - 1).regs.(tx.tx_dst) <- retval;
  m.stats.Stats.commits <- m.stats.Stats.commits + 1;
  m.stats.Stats.stm_commits <- m.stats.Stats.stm_commits + 1;
  m.stats.Stats.useful_cycles <- m.stats.Stats.useful_cycles + (th.time - tx.tx_start);
  m.stats.Stats.committed_tx_insts <- m.stats.Stats.committed_tx_insts + tx.tx_insts;
  let ab = Stats.ab m.stats tx.tx_ab in
  ab.Stats.ab_commits <- ab.Stats.ab_commits + 1;
  if m.evt then
    emit m th
      (Stm_commit
         {
           tid = th.tid;
           ab = tx.tx_ab;
           cycles = th.time - tx.tx_start;
           vcycles;
           rset;
           wset;
         });
  if th.cur_req >= 0 then begin
    if m.evt then
      emit m th (Req_done { tid = th.tid; req = th.cur_req; ab = tx.tx_ab });
    th.cur_req <- -1
  end

(* identify the anchor the abort traces back to, per the configured
   conflicting-PC scheme, and score it against the full-PC oracle *)
let identify_anchor m th table reason =
  match reason with
  | Htm.Conflict { conf_addr; conf_pc; conf_pc_full; _ } ->
    let line = line_of m conf_addr in
    let runtime_anchor =
      match m.mode with
      | Mode.Staggered_hw -> Policy.resolve_anchor table ~conf_pc
      | Mode.Tx_sched -> None
      | Mode.Staggered_sw -> (
        match Softcpc.lookup th.softcpc ~line with
        | None -> None
        | Some site -> (
          match Unified.entry_of_site table site with
          | None -> None
          | Some e -> Unified.anchor_of table e))
      | Mode.Baseline | Mode.Addr_only -> None
    in
    (* oracle: exact full-width PC lookup.  Only the ALP modes score
       anchor accuracy, so skip the (side-effect-free) lookup elsewhere *)
    (if Mode.uses_alps m.mode then
       match
         Option.bind conf_pc_full (fun pc ->
             match Unified.search_by_pc table pc with
             | Some e -> Unified.anchor_of table e
             | None -> None)
       with
       | Some oracle ->
         m.stats.Stats.accuracy_total <- m.stats.Stats.accuracy_total + 1;
         (match runtime_anchor with
         | Some ra when ra.Unified.ue_iid = oracle.Unified.ue_iid ->
           m.stats.Stats.accuracy_hits <- m.stats.Stats.accuracy_hits + 1
         | _ -> ())
       | None -> ());
    (Some (conf_addr, line), runtime_anchor)
  | Htm.Lock_subscription | Htm.Capacity | Htm.Explicit | Htm.Stm_conflict _ ->
    (None, None)

let handle_abort m th =
  (match th.wait with
  | Some (Lock_spin { idx; _ }) ->
    Advisory_lock.remove_waiter m.locks ~idx;
    th.wait <- None
  | _ -> ());
  if th.tx_active then begin
    let tx = th.txs in
    let reason = Htm.tx_cleanup m.htm ~core:th.tid in
    (* set sizes at doom time: the live sets were reset when the
       transaction was doomed, possibly long before this handler ran *)
    let rset, wset = Htm.last_set_sizes m.htm ~core:th.tid in
    release_lock m th ~committed:false;
    charge m th (m.cfg.Config.abort_cost + m.cfg.Config.handler_cost);
    m.stats.Stats.aborts <- m.stats.Stats.aborts + 1;
    let wasted = th.time - tx.tx_start in
    m.stats.Stats.wasted_cycles <- m.stats.Stats.wasted_cycles + wasted;
    (Stats.ab m.stats tx.tx_ab).Stats.ab_aborts
    <- (Stats.ab m.stats tx.tx_ab).Stats.ab_aborts + 1;
    let table = Pipeline.table_for m.compiled ~ab:tx.tx_ab in
    let ctx = th.contexts.(tx.tx_ab) in
    let conf = ref None in
    (match reason with
    | Htm.Conflict { conf_addr; conf_pc; _ } ->
      m.stats.Stats.conflict_aborts <- m.stats.Stats.conflict_aborts + 1;
      let line = line_of m conf_addr in
      conf := Some line;
      Stats.note_conflict m.stats ~conf_line:line ~conf_pc;
      let _, runtime_anchor = identify_anchor m th table reason in
      let skip =
        m.policy.Policy.skip_read_only
        && Pipeline.is_read_only m.compiled ~ab:tx.tx_ab
      in
      (match m.mode with
      | _ when skip -> ()
      | Mode.Baseline -> ()
      | Mode.Addr_only ->
        Policy.activate_addr_only m.policy ctx ~conf_addr ~line
      | Mode.Tx_sched -> Policy.activate_tx_sched m.policy ctx ~line
      | Mode.Staggered_hw | Mode.Staggered_sw -> (
        match
          Policy.activate m.policy ctx ~anchor:runtime_anchor ~conf_addr ~line
            ~retries:tx.tx_attempt
        with
        | Policy.Precise -> m.stats.Stats.precise <- m.stats.Stats.precise + 1
        | Policy.Coarse -> m.stats.Stats.coarse <- m.stats.Stats.coarse + 1
        | Policy.Promoted -> m.stats.Stats.promoted <- m.stats.Stats.promoted + 1
        | Policy.Training -> m.stats.Stats.training <- m.stats.Stats.training + 1))
    | Htm.Lock_subscription ->
      m.stats.Stats.lock_sub_aborts <- m.stats.Stats.lock_sub_aborts + 1
    | Htm.Capacity ->
      (* not a contention signal: no conflict tallies, no ALP activation *)
      m.stats.Stats.capacity_aborts <- m.stats.Stats.capacity_aborts + 1
    | Htm.Explicit ->
      m.stats.Stats.explicit_aborts <- m.stats.Stats.explicit_aborts + 1
    | Htm.Stm_conflict { conf_addr; _ } ->
      (* cross-tier friction: the software commit carries no PC tag, so
         there is no anchor to activate — tally the line only *)
      m.stats.Stats.stm_conflict_aborts <- m.stats.Stats.stm_conflict_aborts + 1;
      let line = line_of m conf_addr in
      conf := Some line;
      Stats.note_conflict m.stats ~conf_line:line ~conf_pc:None);
    if m.evt then begin
      let kind, abort_conf_pc, aggressor =
        match reason with
        | Htm.Conflict { conf_pc; aggressor; _ } -> (Conflict, conf_pc, Some aggressor)
        | Htm.Lock_subscription -> (Lock_subscription, None, None)
        | Htm.Capacity -> (Capacity, None, None)
        | Htm.Explicit -> (Explicit, None, None)
        | Htm.Stm_conflict { aggressor; _ } -> (Stm_conflict, None, Some aggressor)
      in
      emit m th
        (Tx_abort
           {
             tid = th.tid;
             ab = tx.tx_ab;
             kind;
             conf_line = !conf;
             conf_pc = abort_conf_pc;
             aggressor;
             cycles = wasted;
             rset;
             wset;
             probe = tx.tx_is_probe;
           })
    end;
    th.contexts.(tx.tx_ab).Abcontext.probe_streak <- 0;
    tx.tx_is_probe <- false;
    pop_to_base th tx;
    tx.tx_attempt <- tx.tx_attempt + 1;
    let give_up =
      match reason with
      (* a capacity overflow is a property of the footprint, not of the
         interleaving: retrying cannot shrink it, so go irrevocable now *)
      | Htm.Capacity -> true
      | _ -> tx.tx_attempt >= m.retry_budget
    in
    if give_up then begin
      match m.stm with
      | Some _ ->
        (* the hybrid fallback interposes the software tier between the
           hardware retries and the irrevocable lock: capacity overflows
           in particular fit there, since the software tier has no
           footprint budget *)
        tx.tx_stm <- true;
        tx.tx_stm_attempts <- 0;
        begin_attempt m th
      | None ->
        (* fall back to irrevocable execution under the global lock *)
        th.wait <- Some Global_spin
    end
    else begin
      let delay =
        match m.htm_policy.Stx_policy.fallback with
        | Stx_policy.Fallback.Polite _ | Stx_policy.Fallback.Stm_tier _ ->
          (* polite backoff: mean delay proportional to the retry count *)
          let base = m.cfg.Config.backoff_base * tx.tx_attempt in
          let jitter = Stx_util.Rng.int th.rng (max 1 base) in
          (base / 2) + jitter
        | Stx_policy.Fallback.Backoff { base; max_exp; _ } ->
          (* exponential randomized backoff with a capped exponent, drawn
             from the dedicated per-thread stream *)
          let e = min tx.tx_attempt max_exp in
          Stx_util.Rng.int th.backoff_rng (max 1 (base * (1 lsl e)))
      in
      if m.evt then emit m th (Backoff_start { tid = th.tid });
      charge m th delay;
      m.stats.Stats.backoff_cycles <- m.stats.Stats.backoff_cycles + delay;
      if m.evt then emit m th (Backoff_end { tid = th.tid });
      begin_attempt m th
    end
  end

(* a software-tier attempt died (failed validation, deferred to hardware
   ownership, the global lock, or an explicit abort): account it, then
   retry on the software tier or — once the software budget is spent —
   queue for the irrevocable lock, which now only backstops validation
   livelock *)
let handle_stm_abort m th ~vcycles =
  if th.tx_active then begin
    let tx = th.txs in
    let stm = the_stm m in
    let kind = Stm.tx_cleanup stm ~core:th.tid in
    let rset, wset = Stm.last_set_sizes stm ~core:th.tid in
    charge m th (m.cfg.Config.abort_cost + m.cfg.Config.handler_cost);
    m.stats.Stats.aborts <- m.stats.Stats.aborts + 1;
    m.stats.Stats.stm_aborts <- m.stats.Stats.stm_aborts + 1;
    (match kind with
    | Stm.Validation ->
      m.stats.Stats.stm_validation_aborts <- m.stats.Stats.stm_validation_aborts + 1
    | Stm.Hw_owned ->
      m.stats.Stats.stm_hw_owned_aborts <- m.stats.Stats.stm_hw_owned_aborts + 1
    | Stm.Locksub ->
      m.stats.Stats.stm_locksub_aborts <- m.stats.Stats.stm_locksub_aborts + 1
    | Stm.Explicit -> ());
    let wasted = th.time - tx.tx_start in
    m.stats.Stats.wasted_cycles <- m.stats.Stats.wasted_cycles + wasted;
    (Stats.ab m.stats tx.tx_ab).Stats.ab_aborts
    <- (Stats.ab m.stats tx.tx_ab).Stats.ab_aborts + 1;
    if m.evt then begin
      let ev_kind =
        match kind with
        | Stm.Validation -> Stm_validation
        | Stm.Hw_owned -> Stm_hw_owned
        | Stm.Locksub -> Stm_locksub
        | Stm.Explicit -> Stm_explicit
      in
      emit m th
        (Stm_abort
           {
             tid = th.tid;
             ab = tx.tx_ab;
             kind = ev_kind;
             cycles = wasted;
             vcycles;
             rset;
             wset;
           })
    end;
    pop_to_base th tx;
    tx.tx_attempt <- tx.tx_attempt + 1;
    tx.tx_stm_attempts <- tx.tx_stm_attempts + 1;
    if tx.tx_stm_attempts >= m.stm_retries then begin
      tx.tx_stm <- false;
      th.wait <- Some Global_spin
    end
    else begin
      (* polite backoff, same schedule as the hardware tier's *)
      let base = m.cfg.Config.backoff_base * tx.tx_stm_attempts in
      let jitter = Stx_util.Rng.int th.rng (max 1 base) in
      let delay = (base / 2) + jitter in
      if m.evt then emit m th (Backoff_start { tid = th.tid });
      charge m th delay;
      m.stats.Stats.backoff_cycles <- m.stats.Stats.backoff_cycles + delay;
      if m.evt then emit m th (Backoff_end { tid = th.tid });
      begin_attempt m th
    end
  end

(* ------------------------------------------------------------------ *)
(* instruction execution                                               *)

let exec_alp m th (a : Ir.alp) =
  charge m th m.cfg.Config.alp_inactive_cost;
  if
    th.tx_active
    && (not th.txs.tx_irrevocable)
    && (not th.txs.tx_stm)
    && Mode.uses_alps m.mode
  then begin
    let tx = th.txs in
    m.stats.Stats.alps_executed <- m.stats.Stats.alps_executed + 1;
    let f = frame_of th in
    let addr = f.regs.(a.Ir.alp_addr) in
    if addr >= wpl m then begin
      (* software conflicting-PC tracking: one nt probe, plus one nt store
         when the line was absent from the map *)
      if (match m.mode with Mode.Staggered_sw -> true | _ -> false) then begin
        charge m th (2 * m.cfg.Config.l1_latency);
        if Softcpc.note th.softcpc ~line:(line_of m addr) ~site:a.Ir.alp_site then
          charge m th m.cfg.Config.l1_latency
      end;
      let ctx = th.contexts.(tx.tx_ab) in
      let fired =
        ctx.Abcontext.active_site = a.Ir.alp_site
        && Abcontext.address_matched ctx ~words_per_line:(wpl m) ~addr
      in
      if m.evt then
        emit m th
          (Alp_executed { tid = th.tid; ab = tx.tx_ab; site = a.Ir.alp_site; fired });
      if fired then begin
        ignore (Abcontext.consume_active ctx ~site:a.Ir.alp_site);
        request_lock m th ~addr
      end
    end
    else if
      (* a null-address ALP still executed: the trace must tally with
         stats.alps_executed, so it gets an (unfired) event too *)
      m.evt
    then
      emit m th
        (Alp_executed
           { tid = th.tid; ab = tx.tx_ab; site = a.Ir.alp_site; fired = false })
  end

let exec_intr m th f dst intr args =
  match (intr, args) with
  | Ir.Rng, [ bound ] ->
    let b = ev f bound in
    if b <= 0 then trap "rng with nonpositive bound %d" b;
    charge m th 5;
    (match dst with
    | Some d -> f.regs.(d) <- Stx_util.Rng.int th.rng b
    | None -> ())
  | Ir.Thread_id, [] ->
    charge m th 1;
    (match dst with Some d -> f.regs.(d) <- th.tid | None -> ())
  | Ir.Work, [ n ] ->
    let n = ev f n in
    charge m th (max 0 n)
  | Ir.Print, [ v ] ->
    charge m th 1;
    Logs.debug (fun k -> k "thread %d prints %d" th.tid (ev f v))
  | Ir.Abort_tx, [] ->
    charge m th 1;
    if speculative th then begin
      Htm.tx_self_abort m.htm ~core:th.tid;
      handle_abort m th
    end
    else if stm_active th then begin
      let stm = the_stm m in
      (match Stm.status stm ~core:th.tid with
      | Stm.Active -> Stm.tx_self_abort stm ~core:th.tid
      | Stm.Idle | Stm.Doomed _ -> ());
      handle_stm_abort m th ~vcycles:0
    end
  | _ -> trap "bad intrinsic arity"

let do_return m th retval =
  if th.depth = 0 then trap "return with empty stack";
  let frame = th.frames.(th.depth - 1) in
  th.depth <- th.depth - 1;
  charge m th 2;
  let at_tx_root = th.tx_active && th.depth = th.txs.tx_base_depth in
  if at_tx_root then begin
    let tx = th.txs in
    if tx.tx_irrevocable then begin
      release_lock m th ~committed:true;
      Htm.release_global_lock m.htm;
      (* irrevocable execution is non-speculative: no read/write sets *)
      finish_tx m th tx ~rset:0 ~wset:0 retval
    end
    else if tx.tx_stm then begin
      let stm = the_stm m in
      charge m th m.cfg.Config.commit_cost;
      (* version-word traffic the TL2 commit would execute: one probe
         per read line to re-validate, one RMW per write stripe to lock
         and stamp, then the publication stores themselves — charged
         before the (atomic) protocol step so the latencies land inside
         the attempt *)
      let vc = ref 0 in
      Stm.iter_read_lines stm ~core:th.tid (fun line ->
          vc := !vc + mem_latency m th ~addr:(Stm.version_addr stm ~line) ~write:false);
      Stm.iter_write_lines stm ~core:th.tid (fun line ->
          vc := !vc + mem_latency m th ~addr:(Stm.version_addr stm ~line) ~write:true);
      let vcycles = !vc in
      charge m th vcycles;
      m.stats.Stats.stm_validation_cycles <-
        m.stats.Stats.stm_validation_cycles + vcycles;
      Stm.iter_write_addrs stm ~core:th.tid (fun addr ->
          charge m th (mem_latency m th ~addr ~write:true));
      if Stm.tx_commit stm ~core:th.tid then begin
        let rset, wset = Stm.last_set_sizes stm ~core:th.tid in
        finish_stm_tx m th tx ~rset ~wset ~vcycles retval
      end
      else handle_stm_abort m th ~vcycles
    end
    else begin
      charge m th m.cfg.Config.commit_cost;
      if Htm.tx_commit m.htm ~core:th.tid then begin
        let rset, wset = Htm.last_set_sizes m.htm ~core:th.tid in
        release_lock m th ~committed:true;
        finish_tx m th tx ~rset ~wset retval
      end
      else handle_abort m th
    end
  end
  else begin
    if frame.ret_dst >= 0 && th.depth > 0 then
      th.frames.(th.depth - 1).regs.(frame.ret_dst) <- retval;
    (* under an injector the empty stack is the "ready for the next
       request" state, handled by [step]; without one it is the end of
       the thread's program *)
    if th.depth = 0 && m.injector = None then th.finished <- true
  end

let exec_inst m th (inst : Ir.inst) =
  let f = frame_of th in
  m.stats.Stats.insts <- m.stats.Stats.insts + 1;
  if th.tx_active then begin
    th.txs.tx_insts <- th.txs.tx_insts + 1;
    m.stats.Stats.tx_insts <- m.stats.Stats.tx_insts + 1
  end;
  match inst.Ir.op with
  | Ir.Mov (d, v) ->
    charge m th 1;
    f.regs.(d) <- ev f v
  | Ir.Bin (op, d, a, b) ->
    charge m th 1;
    let a = ev f a and b = ev f b in
    let r =
      match op with
      | Ir.Add -> a + b
      | Ir.Sub -> a - b
      | Ir.Mul -> a * b
      | Ir.Div -> if b = 0 then trap "division by zero" else a / b
      | Ir.Rem -> if b = 0 then trap "remainder by zero" else a mod b
      | Ir.And -> a land b
      | Ir.Or -> a lor b
      | Ir.Xor -> a lxor b
      | Ir.Shl -> a lsl (b land 62)
      | Ir.Shr -> a asr (b land 62)
      | Ir.Eq -> if a = b then 1 else 0
      | Ir.Ne -> if a <> b then 1 else 0
      | Ir.Lt -> if a < b then 1 else 0
      | Ir.Le -> if a <= b then 1 else 0
      | Ir.Gt -> if a > b then 1 else 0
      | Ir.Ge -> if a >= b then 1 else 0
    in
    f.regs.(d) <- r
  | Ir.Gep (d, b, _, fi) ->
    charge m th 1;
    f.regs.(d) <- f.regs.(b) + fi
  | Ir.Idx (d, b, esize, i) ->
    charge m th 1;
    f.regs.(d) <- f.regs.(b) + (esize * ev f i)
  | Ir.Load (d, p) ->
    let addr = f.regs.(p) in
    check_addr m addr;
    charge m th (mem_latency m th ~addr ~write:false);
    let v =
      if speculative th then
        Htm.tx_load m.htm ~core:th.tid ~addr ~pc:(pc_of m inst.Ir.iid)
      else if stm_active th then begin
        (* every software read also probes the line's version word *)
        let stm = the_stm m in
        charge m th
          (mem_latency m th
             ~addr:(Stm.version_addr stm ~line:(line_of m addr))
             ~write:false);
        Stm.tx_load stm ~core:th.tid ~addr
      end
      else Htm.nt_load m.htm ~addr
    in
    f.regs.(d) <- v
  | Ir.Store (p, v) ->
    let addr = f.regs.(p) in
    check_addr m addr;
    charge m th (mem_latency m th ~addr ~write:true);
    let value = ev f v in
    if speculative th then
      Htm.tx_store m.htm ~core:th.tid ~addr ~value ~pc:(pc_of m inst.Ir.iid)
    else if stm_active th then
      Stm.tx_store (the_stm m) ~core:th.tid ~addr ~value
    else Htm.nt_store m.htm ~core:th.tid ~addr ~value
  | Ir.Alloc (d, sname) ->
    charge m th 20;
    f.regs.(d) <-
      Alloc.alloc m.allocator ~thread:th.tid (ssize_of m inst.Ir.iid sname)
  | Ir.Alloc_arr (d, sname, n) ->
    charge m th 20;
    let sz = ssize_of m inst.Ir.iid sname in
    let n = ev f n in
    if n <= 0 then trap "alloc_arr with nonpositive count %d" n;
    f.regs.(d) <- Alloc.alloc m.allocator ~thread:th.tid (n * sz)
  | Ir.Call (dst, g, args) ->
    charge m th 2;
    let n = eval_args th f 0 args in
    push_frame th (callee_of m inst.Ir.iid g) th.argbuf n
      (match dst with Some d -> d | None -> -1)
  | Ir.Atomic_call (dst, ab, args) ->
    if in_tx th then trap "nested atomic call";
    let n = eval_args th f 0 args in
    start_atomic m th ~ab
      ~dst:(match dst with Some d -> d | None -> -1)
      ~args:th.argbuf ~nargs:n
  | Ir.Intr (dst, intr, args) -> exec_intr m th f dst intr args
  | Ir.Alp a -> exec_alp m th a

(* ------------------------------------------------------------------ *)
(* the per-thread step                                                 *)

let exec_term m th =
  let f = frame_of th in
  charge m th 1;
  match f.func.Ir.blocks.(f.bi).Ir.term with
  | Ir.Jmp _ ->
    f.bi <- f.tgt.(2 * f.bi);
    f.insts <- f.func.Ir.blocks.(f.bi).Ir.insts;
    f.ip <- 0
  | Ir.Br (c, _, _) ->
    f.bi <- f.tgt.((2 * f.bi) + (if ev f c <> 0 then 0 else 1));
    f.insts <- f.func.Ir.blocks.(f.bi).Ir.insts;
    f.ip <- 0
  | Ir.Ret v ->
    let retval = match v with Some v -> ev f v | None -> 0 in
    do_return m th retval

(* [Stdlib.min] is a polymorphic call (compare_val) without flambda;
   spell the int min out *)
let tourn_min a b : int = if a <= b then a else b

(* Re-settle the tournament tree above a changed leaf; stops as soon as
   a node's minimum is unaffected.  Top level (state in arguments) so
   the per-event call is direct, not through a closure. *)
let rec settle (keys : int array) i =
  if i >= 1 then begin
    let v = tourn_min keys.(2 * i) keys.((2 * i) + 1) in
    if v <> keys.(i) then begin
      keys.(i) <- v;
      settle keys (i / 2)
    end
  end

let spin_wait m th =
  charge m th m.cfg.Config.spin_recheck_cost;
  m.stats.Stats.lock_wait_cycles <-
    m.stats.Stats.lock_wait_cycles + m.cfg.Config.spin_recheck_cost

let step m th =
  m.steps <- m.steps + 1;
  if m.steps > m.max_steps then trap "simulation exceeded %d steps" m.max_steps;
  (* a doomed speculative transaction aborts before doing anything else *)
  if speculative th && (match Htm.status m.htm ~core:th.tid with Htm.Doomed _ -> true | _ -> false)
  then handle_abort m th
  else if
    stm_active th
    && (match Stm.status (the_stm m) ~core:th.tid with
       | Stm.Doomed _ -> true
       | _ -> false)
  then handle_stm_abort m th ~vcycles:0
  else
    match th.wait with
    | Some (Lock_spin { idx; line; deadline }) ->
      spin_wait m th;
      let tx = th.txs in
      if Advisory_lock.try_acquire m.locks ~core:th.tid ~idx then begin
        Advisory_lock.remove_waiter m.locks ~idx;
        tx.tx_lock <- idx;
        tx.tx_held_lock <- true;
        m.stats.Stats.lock_acquires <- m.stats.Stats.lock_acquires + 1;
        (Stats.ab m.stats tx.tx_ab).Stats.ab_locks
        <- (Stats.ab m.stats tx.tx_ab).Stats.ab_locks + 1;
        th.wait <- None;
        if m.evt then emit m th (Lock_acquired { tid = th.tid; lock = idx; line })
      end
      else if th.time >= deadline then begin
        Advisory_lock.remove_waiter m.locks ~idx;
        m.stats.Stats.lock_timeouts <- m.stats.Stats.lock_timeouts + 1;
        th.wait <- None;
        if m.evt then emit m th (Lock_timeout { tid = th.tid; lock = idx })
      end
    | Some Global_spin ->
      spin_wait m th;
      if Htm.acquire_global_lock m.htm ~core:th.tid then begin
        let tx = th.txs in
        tx.tx_irrevocable <- true;
        m.stats.Stats.irrevocable_entries <- m.stats.Stats.irrevocable_entries + 1;
        th.wait <- None;
        if m.evt then emit m th (Tx_irrevocable { tid = th.tid; ab = tx.tx_ab });
        begin_attempt m th
      end
    | None ->
      if th.depth = 0 then begin
        (* only reachable under an injector: the thread has no program of
           its own and asks the request source for its next work item *)
        match m.injector with
        | None -> trap "thread %d stepped with no frame" th.tid
        | Some inject -> (
          match inject ~tid:th.tid ~now:th.time with
          | Inject { req; ab; args } ->
            if ab < 0 || ab >= Array.length m.compiled.Pipeline.prog.Ir.atomics
            then trap "injected request %d names unknown atomic block %d" req ab;
            th.cur_req <- req;
            if m.evt then emit m th (Req_dispatch { tid = th.tid; req; ab });
            charge m th 2;
            start_atomic m th ~ab ~dst:(-1) ~args ~nargs:(Array.length args)
          | Idle_until t ->
            (* idle until the next arrival; always make progress so an
               ill-behaved injector cannot stall the event loop *)
            th.time <- max t (th.time + 1)
          | Drained -> th.finished <- true)
      end
      else begin
        let f = th.frames.(th.depth - 1) in
        let insts = f.insts in
        if f.ip < Array.length insts then begin
          let inst = insts.(f.ip) in
          f.ip <- f.ip + 1;
          exec_inst m th inst
        end
        else exec_term m th
      end

(* ------------------------------------------------------------------ *)
(* the run loop                                                        *)

let run ?(seed = 1) ?(policy = Policy.default_params)
    ?(htm_policy = Stx_policy.default) ?(lock_timeout = 100_000) ?(locks = 256)
    ?(max_waiters = 2) ?(max_steps = 400_000_000) ?on_event ?injector ~cfg ~mode
    spec =
  let evt, on_event =
    match on_event with
    | Some f -> (true, f)
    | None -> (false, fun ~time:_ _ -> ())
  in
  let memory = Memory.create () in
  let allocator = Alloc.create ~words_per_line:cfg.Config.words_per_line memory in
  let htm = Htm.create ~policy:htm_policy cfg memory allocator in
  let locks = Advisory_lock.create ~count:locks htm allocator in
  (* the software tier (and its version-word table in simulated memory)
     exists only under the hybrid fallback, so every other bundle keeps
     the seed's exact allocation layout *)
  let stm, stm_retries =
    match htm_policy.Stx_policy.fallback with
    | Stx_policy.Fallback.Stm_tier { stm_retries; _ } ->
      let s = Stm.create htm memory allocator in
      Htm.set_on_publish htm (Some (fun ~line -> Stm.note_published s ~line));
      (Some s, stm_retries)
    | Stx_policy.Fallback.Polite _ | Stx_policy.Fallback.Backoff _ -> (None, 0)
  in
  let hier = Hierarchy.create cfg in
  let master = Stx_util.Rng.create seed in
  let env = { memory; alloc = allocator; setup_rng = Stx_util.Rng.split master } in
  let nthreads = cfg.Config.cores in
  let args = spec.thread_args env ~threads:nthreads in
  if Array.length args <> nthreads then
    invalid_arg "Machine.run: thread_args must cover every thread";
  let stats = Stats.create ~threads:nthreads in
  let n_abs = Array.length spec.compiled.Pipeline.prog.Ir.atomics in
  let backoff_seed =
    match htm_policy.Stx_policy.fallback with
    | Stx_policy.Fallback.Backoff { seed = s; _ } -> s
    | Stx_policy.Fallback.Polite _ | Stx_policy.Fallback.Stm_tier _ -> 0
  in
  let main_fn = Ir.find_func spec.compiled.Pipeline.prog spec.thread_main in
  let main_tgt = { tfn = main_fn; ttgt = resolve_targets main_fn } in
  let mk_thread tid =
    {
      tid;
      time = 0;
      frames =
        Array.init 8 (fun _ ->
            {
              func = main_fn;
              tgt = main_tgt.ttgt;
              bi = 0;
              insts = main_fn.Ir.blocks.(0).Ir.insts;
              ip = 0;
              regs = Array.make 8 0;
              ret_dst = -1;
            });
      depth = 0;
      argbuf = Array.make 16 0;
      finished = false;
      wait = None;
      txs =
        {
          tx_ab = 0;
          tx_dst = -1;
          tx_args = Array.make 8 0;
          tx_nargs = 0;
          tx_base_depth = 0;
          tx_attempt = 0;
          tx_start = 0;
          tx_insts = 0;
          tx_lock = -1;
          tx_held_lock = false;
          tx_is_probe = false;
          tx_irrevocable = false;
          tx_stm = false;
          tx_stm_attempts = 0;
        };
      tx_active = false;
      rng = Stx_util.Rng.split master;
      backoff_rng = Stx_util.Rng.create (backoff_seed + ((tid + 1) * 65599));
      cur_req = -1;
      contexts =
        Array.init n_abs (fun ab ->
            Abcontext.create ~ab (Pipeline.table_for spec.compiled ~ab));
      softcpc = Softcpc.create ();
    }
  in
  let threads = Array.init nthreads mk_thread in
  let n_iids = max 1 spec.compiled.Pipeline.prog.Ir.next_iid in
  let m =
    {
      cfg;
      mode;
      policy;
      htm_policy;
      retry_budget =
        Stx_policy.Fallback.retry_budget htm_policy.Stx_policy.fallback
          ~default:cfg.Config.max_retries;
      lock_timeout;
      max_waiters;
      compiled = spec.compiled;
      memory;
      hier;
      htm;
      stm;
      stm_retries;
      locks;
      threads;
      stats;
      evt;
      on_event;
      injector;
      callee = Array.make n_iids None;
      ab_roots = Array.make (max 1 n_abs) None;
      pcs = Array.make n_iids min_int;
      ssizes = Array.make n_iids (-1);
      line_shift = shift_of_pow2 cfg.Config.words_per_line;
      steps = 0;
      max_steps;
      allocator;
    }
  in
  Array.iter
    (fun th -> push_frame th main_tgt args.(th.tid) (Array.length args.(th.tid)) (-1))
    threads;
  (* The scheduler must run the unfinished thread with the lowest time,
     breaking ties toward the lowest tid — a linear scan per event was a
     third of total CPU.  A tournament tree over the packed key
     [time * P + tid] makes the same choice (keys are totally ordered,
     and min-key = min (time, tid) lexicographically) but re-settles
     only the stepped thread's leaf-to-root path: O(log cores) per
     event.  Finished threads park at [max_int], so a [max_int] root
     means every thread is done. *)
  let pw = ref 1 in
  while !pw < nthreads do
    pw := !pw * 2
  done;
  let pw = !pw in
  let keys = Array.make (2 * pw) max_int in
  let key_of th = if th.finished then max_int else (th.time * pw) + th.tid in
  Array.iter (fun th -> keys.(pw + th.tid) <- key_of th) threads;
  for i = pw - 1 downto 1 do
    keys.(i) <- tourn_min keys.(2 * i) keys.((2 * i) + 1)
  done;
  let rec loop () =
    let root = keys.(1) in
    if root <> max_int then begin
      let th = threads.(root land (pw - 1)) in
      step m th;
      keys.(pw + th.tid) <- key_of th;
      settle keys ((pw + th.tid) / 2);
      loop ()
    end
  in
  loop ();
  (* end-of-run invariants: every thread wound down cleanly and every
     advisory lock was released *)
  Array.iter
    (fun th ->
      if th.tx_active || th.depth > 0 then
        trap "thread %d finished with live state" th.tid)
    threads;
  for idx = 0 to Advisory_lock.count m.locks - 1 do
    match Advisory_lock.holder m.locks ~idx with
    | Some core -> trap "advisory lock %d still held by core %d at end of run" idx core
    | None -> ()
  done;
  if Htm.global_lock_held htm then trap "global lock still held at end of run";
  (match stm with
  | Some s ->
    Array.iteri
      (fun core th ->
        ignore th;
        match Stm.status s ~core with
        | Stm.Idle -> ()
        | Stm.Active | Stm.Doomed _ ->
          trap "software transaction still live on core %d at end of run" core)
      threads
  | None -> ());
  Array.iter (fun th -> stats.Stats.total_cycles <- max stats.Stats.total_cycles th.time) threads;
  Array.iter
    (fun th -> stats.Stats.thread_cycles <- stats.Stats.thread_cycles + th.time)
    threads;
  (* file this run's totals under its own policy bundle so merged sweeps
     across policies can be ranked per bundle *)
  let pol = Stats.policy_tally stats (Stx_policy.label htm_policy) in
  pol.Stats.p_commits <- pol.Stats.p_commits + stats.Stats.commits;
  pol.Stats.p_aborts <- pol.Stats.p_aborts + stats.Stats.aborts;
  pol.Stats.p_capacity <- pol.Stats.p_capacity + stats.Stats.capacity_aborts;
  pol.Stats.p_irrevocable <-
    pol.Stats.p_irrevocable + stats.Stats.irrevocable_entries;
  (* the run's internal index structures (cache hierarchy, HTM
     reader/writer rows) never escape; recycle their arrays so repeated
     runs stop churning the major heap *)
  Hierarchy.retire hier;
  Htm.retire htm;
  stats

(* TIR types are referenced through Stx_compiler *)
open Stx_machine
open Stx_core

(** The simulated machine: a deterministic discrete-event interpreter that
    runs one TIR thread per core under the HTM and the Staggered
    Transactions runtime.

    At every step the runnable thread with the smallest local clock (ties
    by id) executes one instruction and is charged its cycle cost — memory
    operations pay the hierarchy latency of {!Stx_machine.Hierarchy}.
    Atomic calls follow the paper's runtime protocol: a bounded number of
    hardware attempts separated by backoff, then irrevocable execution
    under the global lock. Under the [htm-stm-lock] fallback a TL2-style
    software tier ([Stx_stm]) interposes between the two: exhausted
    hardware retries (and [Capacity] aborts, whose footprints the
    software tier can hold) run as software transactions, and the global
    lock only backstops a software attempt budget spent on validation
    livelock. The retry budget and backoff schedule come from
    the {!Stx_policy.Fallback} policy of the [htm_policy] bundle (default:
    [cfg.max_retries] attempts with polite backoff, the seed behaviour);
    the bundle's resolution and capacity policies govern the HTM itself.
    A [Capacity] abort goes irrevocable immediately — the footprint will
    not shrink on retry. ALPs consult the thread's ABContext and acquire
    advisory locks (spinning with a timeout); the Figure 6 policy runs in
    the abort handler. *)

exception Sim_error of string
(** A program-level trap: null dereference, division by zero, runaway
    simulation, etc. *)

type abort_kind =
  | Conflict
  | Lock_subscription
  | Capacity
  | Explicit
  | Stm_conflict
      (** a concurrent software-tier commit published into this hardware
          transaction's footprint (hybrid fallback only) *)

type stm_abort_kind = Stm_validation | Stm_hw_owned | Stm_locksub | Stm_explicit
(** Why a software-tier attempt died: read-set validation failure,
    deference to a hardware-owned write line, the global lock held at
    commit, or an explicit program abort. *)

type event =
  | Tx_begin of { tid : int; ab : int; attempt : int; probe : bool }
      (** one per hardware attempt AND per irrevocable (re)start, so every
          commit closes a begin *)
  | Tx_commit of {
      tid : int;
      ab : int;
      cycles : int;  (** cycles of the committing attempt *)
      irrevocable : bool;
      rset : int;  (** read-set lines at commit (0 when irrevocable) *)
      wset : int;  (** write-set lines at commit *)
      probe : bool;
    }
  | Tx_abort of {
      tid : int;
      ab : int;
      kind : abort_kind;
      conf_line : int option;  (** conflicting cache line, data conflicts *)
      conf_pc : int option;  (** the victim's (truncated) PC tag *)
      aggressor : int option;  (** core whose access doomed the victim *)
      cycles : int;  (** cycles wasted by the aborted attempt *)
      rset : int;  (** read-set lines when the attempt was doomed *)
      wset : int;  (** write-set lines when the attempt was doomed *)
      probe : bool;
    }
  | Tx_irrevocable of { tid : int; ab : int }
      (** global lock acquired; an irrevocable [Tx_begin] follows *)
  | Alp_executed of { tid : int; ab : int; site : int; fired : bool }
      (** a dynamic ALP instruction; [fired] when it went for its lock *)
  | Lock_attempt of { tid : int; lock : int; line : int }
  | Lock_acquired of { tid : int; lock : int; line : int }
  | Lock_released of { tid : int; lock : int; committed : bool }
  | Lock_waiting of { tid : int; lock : int }
  | Lock_timeout of { tid : int; lock : int }
  | Backoff_start of { tid : int }
  | Backoff_end of { tid : int }
  | Req_dispatch of { tid : int; req : int; ab : int }
      (** an injected request left the arrival queue and began service on
          core [tid] (serving runs only; see {!injection}) *)
  | Req_done of { tid : int; req : int; ab : int }
      (** the request's transaction committed — emitted right after the
          closing [Tx_commit] (or [Stm_commit]), at the same timestamp *)
  | Stm_begin of { tid : int; ab : int; attempt : int }
      (** a software-tier attempt started ([htm-stm-lock] fallback);
          [attempt] continues the hardware attempt numbering *)
  | Stm_commit of {
      tid : int;
      ab : int;
      cycles : int;  (** cycles of the committing software attempt *)
      vcycles : int;
          (** version-word latency charged at commit (validation probes
              plus stripe lock/stamp traffic; inside [cycles]) *)
      rset : int;  (** read-set lines at commit *)
      wset : int;  (** write-set lines at commit *)
    }
  | Stm_abort of {
      tid : int;
      ab : int;
      kind : stm_abort_kind;
      cycles : int;
      vcycles : int;
      rset : int;
      wset : int;
    }

(** What the request source tells an idle core (a core whose call stack
    is empty) when polled. This is the open-loop serving hook: instead of
    running a fixed per-thread program to completion, every core asks the
    injector for its next unit of work, timestamped on the simulated
    clock. *)
type injection =
  | Inject of { req : int; ab : int; args : int array }
      (** run atomic block [ab] with [args] as request [req] now *)
  | Idle_until of int
      (** no request ready; sleep until this simulated time (a poll that
          does not advance past [now] still moves the clock by one cycle,
          so the event loop always progresses) *)
  | Drained  (** no further requests will arrive: the core retires *)

type setup_env = { memory : Memory.t; alloc : Alloc.t; setup_rng : Stx_util.Rng.t }

type spec = {
  compiled : Stx_compiler.Pipeline.t;
  thread_main : string;  (** function run by every thread *)
  thread_args : setup_env -> threads:int -> int array array;
      (** build the shared state in simulated memory and return each
          thread's argument vector *)
}

val run :
  ?seed:int ->
  ?policy:Policy.params ->
  ?htm_policy:Stx_policy.t ->
  ?lock_timeout:int ->
  ?locks:int ->
  ?max_waiters:int ->
  ?max_steps:int ->
  ?on_event:(time:int -> event -> unit) ->
  ?injector:(tid:int -> now:int -> injection) ->
  cfg:Config.t ->
  mode:Mode.t ->
  spec ->
  Stats.t
(** Deterministic for a given [(seed, cfg, mode, htm_policy, spec)].
    [injector], when given, turns the run request-driven: each thread
    still executes [thread_main] first (a serving spec makes that a
    trivial return), and from then on an empty call stack polls the
    injector for the next request instead of finishing the thread;
    brackets of [Req_dispatch]/[Req_done] events report each request's
    service interval. Without [injector] behaviour is bit-for-bit the
    closed-loop machine.
    [policy] is the ALP activation policy (Figure 6); [htm_policy]
    (default {!Stx_policy.default}, the paper's hardware point) bundles
    conflict resolution, set capacity, and the fallback schedule.
    [lock_timeout] defaults to 100_000 cycles; [locks] to 256;
    [max_waiters] (default 2) caps the spinners per advisory lock — an
    ALP finding a full queue proceeds speculatively, keeping the
    mechanism a stagger rather than a convoy; [max_steps] bounds the
    total instruction count as a runaway backstop. *)

type ab_stat = {
  mutable ab_commits : int;
  mutable ab_aborts : int;
  mutable ab_locks : int;
  mutable ab_irrevocable : int;
}

type pol_stat = {
  mutable p_commits : int;
  mutable p_aborts : int;
  mutable p_capacity : int;
  mutable p_irrevocable : int;
}

type t = {
  threads : int;
  mutable commits : int;
  mutable aborts : int;
  mutable conflict_aborts : int;
  mutable lock_sub_aborts : int;
  mutable explicit_aborts : int;
  mutable capacity_aborts : int;
  mutable stm_conflict_aborts : int;
      (* hardware aborts inflicted by a software-tier commit *)
  mutable stm_commits : int;
  mutable stm_aborts : int;
  mutable stm_validation_aborts : int;
  mutable stm_hw_owned_aborts : int;
  mutable stm_locksub_aborts : int;
  mutable stm_validation_cycles : int;
  mutable irrevocable_entries : int;
  mutable useful_cycles : int;
  mutable wasted_cycles : int;
  mutable tx_mode_cycles : int;
  mutable lock_wait_cycles : int;
  mutable backoff_cycles : int;
  mutable total_cycles : int;
  mutable thread_cycles : int;
  mutable lock_acquires : int;
  mutable lock_timeouts : int;
  mutable alps_executed : int;
  mutable alps_lock_attempts : int;
  mutable accuracy_hits : int;
  mutable accuracy_total : int;
  mutable precise : int;
  mutable coarse : int;
  mutable promoted : int;
  mutable training : int;
  mutable insts : int;
  mutable tx_insts : int;
  mutable committed_tx_insts : int;
  conf_addr_freq : (int, int) Hashtbl.t;
  conf_pc_freq : (int, int) Hashtbl.t;
  per_ab : (int, ab_stat) Hashtbl.t;
  per_policy : (string, pol_stat) Hashtbl.t;
}

let create ~threads =
  {
    threads;
    commits = 0;
    aborts = 0;
    conflict_aborts = 0;
    lock_sub_aborts = 0;
    explicit_aborts = 0;
    capacity_aborts = 0;
    stm_conflict_aborts = 0;
    stm_commits = 0;
    stm_aborts = 0;
    stm_validation_aborts = 0;
    stm_hw_owned_aborts = 0;
    stm_locksub_aborts = 0;
    stm_validation_cycles = 0;
    irrevocable_entries = 0;
    useful_cycles = 0;
    wasted_cycles = 0;
    tx_mode_cycles = 0;
    lock_wait_cycles = 0;
    backoff_cycles = 0;
    total_cycles = 0;
    thread_cycles = 0;
    lock_acquires = 0;
    lock_timeouts = 0;
    alps_executed = 0;
    alps_lock_attempts = 0;
    accuracy_hits = 0;
    accuracy_total = 0;
    precise = 0;
    coarse = 0;
    promoted = 0;
    training = 0;
    insts = 0;
    tx_insts = 0;
    committed_tx_insts = 0;
    conf_addr_freq = Hashtbl.create 64;
    conf_pc_freq = Hashtbl.create 64;
    per_ab = Hashtbl.create 8;
    per_policy = Hashtbl.create 4;
  }

let aborts_per_commit t = Stx_util.Stat.ratio t.aborts t.commits
let wasted_over_useful t = Stx_util.Stat.ratio t.wasted_cycles t.useful_cycles
let pct_irrevocable t = Stx_util.Stat.percent t.irrevocable_entries t.commits
(* tx_mode_cycles aggregates across threads, so the denominator must too:
   thread_cycles (the sum of final thread-local clocks, accumulated at run
   end and summed by [merge]). Recomputing it as total_cycles * threads
   skews merged values — merge maxes both factors, so two sequential
   same-thread runs would divide a summed numerator by an un-summed
   denominator and report > 100%. The fallback covers hand-built records
   that never ran (fixtures, old store entries). *)
let pct_tx_time t =
  let denom =
    if t.thread_cycles > 0 then t.thread_cycles else t.total_cycles * t.threads
  in
  Stx_util.Stat.percent t.tx_mode_cycles denom
let accuracy t = Stx_util.Stat.percent t.accuracy_hits t.accuracy_total

let locality ?(top = 1) freq =
  let total = Hashtbl.fold (fun _ c acc -> acc + c) freq 0 in
  if total = 0 then 0.
  else begin
    let counts = Hashtbl.fold (fun _ c acc -> c :: acc) freq [] in
    let sorted = List.sort (fun a b -> compare b a) counts in
    let rec take k = function
      | c :: rest when k > 0 -> c + take (k - 1) rest
      | _ -> 0
    in
    float_of_int (take top sorted) /. float_of_int total
  end

let ab t id =
  match Hashtbl.find_opt t.per_ab id with
  | Some a -> a
  | None ->
    let a = { ab_commits = 0; ab_aborts = 0; ab_locks = 0; ab_irrevocable = 0 } in
    Hashtbl.add t.per_ab id a;
    a

let policy_tally t label =
  match Hashtbl.find_opt t.per_policy label with
  | Some p -> p
  | None ->
    let p = { p_commits = 0; p_aborts = 0; p_capacity = 0; p_irrevocable = 0 } in
    Hashtbl.add t.per_policy label p;
    p

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_into tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let merge a b =
  let m = create ~threads:(max a.threads b.threads) in
  m.commits <- a.commits + b.commits;
  m.aborts <- a.aborts + b.aborts;
  m.conflict_aborts <- a.conflict_aborts + b.conflict_aborts;
  m.lock_sub_aborts <- a.lock_sub_aborts + b.lock_sub_aborts;
  m.explicit_aborts <- a.explicit_aborts + b.explicit_aborts;
  m.capacity_aborts <- a.capacity_aborts + b.capacity_aborts;
  m.stm_conflict_aborts <- a.stm_conflict_aborts + b.stm_conflict_aborts;
  m.stm_commits <- a.stm_commits + b.stm_commits;
  m.stm_aborts <- a.stm_aborts + b.stm_aborts;
  m.stm_validation_aborts <- a.stm_validation_aborts + b.stm_validation_aborts;
  m.stm_hw_owned_aborts <- a.stm_hw_owned_aborts + b.stm_hw_owned_aborts;
  m.stm_locksub_aborts <- a.stm_locksub_aborts + b.stm_locksub_aborts;
  m.stm_validation_cycles <- a.stm_validation_cycles + b.stm_validation_cycles;
  m.irrevocable_entries <- a.irrevocable_entries + b.irrevocable_entries;
  m.useful_cycles <- a.useful_cycles + b.useful_cycles;
  m.wasted_cycles <- a.wasted_cycles + b.wasted_cycles;
  m.tx_mode_cycles <- a.tx_mode_cycles + b.tx_mode_cycles;
  m.lock_wait_cycles <- a.lock_wait_cycles + b.lock_wait_cycles;
  m.backoff_cycles <- a.backoff_cycles + b.backoff_cycles;
  (* total_cycles is a makespan, not a counter: concurrent shards overlap.
     thread_cycles is a counter: every thread's clock keeps ticking in its
     own run, so the %TM denominator sums. *)
  m.total_cycles <- max a.total_cycles b.total_cycles;
  m.thread_cycles <- a.thread_cycles + b.thread_cycles;
  m.lock_acquires <- a.lock_acquires + b.lock_acquires;
  m.lock_timeouts <- a.lock_timeouts + b.lock_timeouts;
  m.alps_executed <- a.alps_executed + b.alps_executed;
  m.alps_lock_attempts <- a.alps_lock_attempts + b.alps_lock_attempts;
  m.accuracy_hits <- a.accuracy_hits + b.accuracy_hits;
  m.accuracy_total <- a.accuracy_total + b.accuracy_total;
  m.precise <- a.precise + b.precise;
  m.coarse <- a.coarse + b.coarse;
  m.promoted <- a.promoted + b.promoted;
  m.training <- a.training + b.training;
  m.insts <- a.insts + b.insts;
  m.tx_insts <- a.tx_insts + b.tx_insts;
  m.committed_tx_insts <- a.committed_tx_insts + b.committed_tx_insts;
  let union dst src = Hashtbl.iter (fun k v -> add_into dst k v) src in
  union m.conf_addr_freq a.conf_addr_freq;
  union m.conf_addr_freq b.conf_addr_freq;
  union m.conf_pc_freq a.conf_pc_freq;
  union m.conf_pc_freq b.conf_pc_freq;
  let add_abs src =
    Hashtbl.iter
      (fun id (x : ab_stat) ->
        let d = ab m id in
        d.ab_commits <- d.ab_commits + x.ab_commits;
        d.ab_aborts <- d.ab_aborts + x.ab_aborts;
        d.ab_locks <- d.ab_locks + x.ab_locks;
        d.ab_irrevocable <- d.ab_irrevocable + x.ab_irrevocable)
      src
  in
  add_abs a.per_ab;
  add_abs b.per_ab;
  let add_pols src =
    Hashtbl.iter
      (fun label (x : pol_stat) ->
        let d = policy_tally m label in
        d.p_commits <- d.p_commits + x.p_commits;
        d.p_aborts <- d.p_aborts + x.p_aborts;
        d.p_capacity <- d.p_capacity + x.p_capacity;
        d.p_irrevocable <- d.p_irrevocable + x.p_irrevocable)
      src
  in
  add_pols a.per_policy;
  add_pols b.per_policy;
  m

let note_conflict t ~conf_line ~conf_pc =
  bump t.conf_addr_freq conf_line;
  match conf_pc with Some pc -> bump t.conf_pc_freq pc | None -> ()

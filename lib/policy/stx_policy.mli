(** The pluggable HTM policy bundle.

    The paper's evaluation (§6) is conditioned on a single hardware point:
    eager requester-wins conflict resolution, effectively unbounded
    read/write sets, and a fixed retry-then-irrevocable software fallback.
    This module makes those three axes first-class values so the simulator
    can explore the neighbourhood of that point — which transactions can
    commit at all under bounded capacity, and how the fallback path shapes
    throughput under contention — without forking the machine model.

    A policy bundle is plain data (variants and records, no closures), so
    it can be printed, parsed, compared, hashed into the result-store
    digest, and attached as a metrics label. The {!default} bundle is the
    paper's configuration and is behaviour-preserving by construction:
    running any workload under [default] produces bit-for-bit the same
    {!Stx_sim.Stats} as the pre-policy simulator. *)

module Resolution : sig
  (** Which transaction survives a data conflict. *)
  type t =
    | Requester_wins
        (** The accessing (requesting) core dooms every conflicting
            speculative transaction — eager ASF-style resolution, the
            paper's hardware point. *)
    | Responder_wins
        (** Suicide: a transactional requester that hits a line owned by
            another speculative transaction dooms {e itself}; the
            established owner (responder) keeps running. Nontransactional
            and irrevocable requesters still win — they cannot abort. *)
    | Timestamp
        (** Karma: the older transaction (earlier begin timestamp) wins.
            Timestamps persist across retries of the same transaction, so
            a repeatedly-aborted transaction ages into priority and cannot
            be livelocked out. *)

  val to_string : t -> string
  val of_string : string -> (t, string) result
  val all : t list
end

module Capacity : sig
  (** Read/write-set capacity of the simulated HTM. *)
  type t =
    | Unbounded  (** No hardware limit (the paper's idealisation). *)
    | Bounded of { read_lines : int; write_lines : int }
        (** A transaction that tries to grow its read (write) set past
            [read_lines] ([write_lines]) distinct cache lines aborts with
            the [Capacity] reason. Budgets must be positive. *)

  val to_string : t -> string
  val of_string : string -> (t, string) result
end

module Fallback : sig
  (** Retry/backoff schedule between an abort and the next attempt, and
      when to give up on hardware and go irrevocable. *)
  type t =
    | Polite of { retries : int option }
        (** The seed behaviour: linearly growing polite delay drawn from
            the thread's own simulation RNG; after [retries] failed
            attempts (default: the machine config's [max_retries]) the
            transaction acquires the global lock and runs irrevocably. *)
    | Backoff of { retries : int; base : int; max_exp : int; seed : int }
        (** Exponential randomized backoff: attempt [k] sleeps a uniform
            draw from [0, base * 2^min(k, max_exp)), using a dedicated
            PRNG stream derived from [seed] and the thread id — so
            changing the backoff policy never perturbs the workload's own
            random choices. *)
    | Stm_tier of { retries : int option; stm_retries : int }
        (** The hybrid three-tier fallback (htm → stm → lock): after
            [retries] failed hardware attempts (default: the machine
            config's [max_retries]) — or immediately on a [Capacity]
            abort — the transaction re-executes in the TL2-style software
            tier ({!Stx_stm}) instead of going irrevocable. Only after
            [stm_retries] failed software attempts does it acquire the
            global lock, which now backstops STM validation livelock
            rather than every hardware failure. Parses from
            ["htm-stm-lock[:R[:S]]"] or ["stm[:N]"]. *)

  val to_string : t -> string
  val of_string : string -> (t, string) result

  val stm_retries_default : int
  (** Software attempts a bare ["htm-stm-lock"]/["stm"] allows before the
      transaction gives up on the STM tier and goes irrevocable. *)

  val retry_budget : t -> default:int -> int
  (** Number of hardware attempts before going irrevocable. *)
end

type t = {
  resolution : Resolution.t;
  capacity : Capacity.t;
  fallback : Fallback.t;
}

val default : t
(** [Requester_wins] + [Unbounded] + [Polite {retries = None}] — the
    paper's hardware point; reproduces the pre-policy simulator exactly. *)

val make :
  ?resolution:Resolution.t -> ?capacity:Capacity.t -> ?fallback:Fallback.t ->
  unit -> t

val label : t -> string
(** Canonical ["resolution+capacity+fallback"] string. Uses only
    characters from the metrics-registry label charset
    [[a-zA-Z0-9_.:+-]], with [+] as the axis separator, so it is directly
    usable as a label value and inside cache digests. *)

val of_label : string -> (t, string) result
(** Inverse of {!label}; also accepts a bare resolution (axes omitted from
    the right default). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

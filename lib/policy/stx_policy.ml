module Resolution = struct
  type t = Requester_wins | Responder_wins | Timestamp

  let to_string = function
    | Requester_wins -> "requester-wins"
    | Responder_wins -> "responder-wins"
    | Timestamp -> "timestamp"

  let of_string = function
    | "requester-wins" | "requester" -> Ok Requester_wins
    | "responder-wins" | "responder" | "suicide" -> Ok Responder_wins
    | "timestamp" | "karma" -> Ok Timestamp
    | s ->
      Error
        (Printf.sprintf
           "unknown resolution policy %S (expected requester-wins, \
            responder-wins, or timestamp)"
           s)

  let all = [ Requester_wins; Responder_wins; Timestamp ]
end

module Capacity = struct
  type t = Unbounded | Bounded of { read_lines : int; write_lines : int }

  let to_string = function
    | Unbounded -> "unbounded"
    | Bounded { read_lines; write_lines } ->
      Printf.sprintf "bounded:%d:%d" read_lines write_lines

  let of_string s =
    match s with
    | "unbounded" -> Ok Unbounded
    | _ -> (
      match String.split_on_char ':' s with
      | [ "bounded"; r; w ] -> (
        match (int_of_string_opt r, int_of_string_opt w) with
        | Some read_lines, Some write_lines
          when read_lines > 0 && write_lines > 0 ->
          Ok (Bounded { read_lines; write_lines })
        | _ ->
          Error
            (Printf.sprintf
               "capacity budgets must be positive integers in %S" s))
      | _ ->
        Error
          (Printf.sprintf
             "unknown capacity policy %S (expected unbounded or bounded:R:W)"
             s))
end

module Fallback = struct
  type t =
    | Polite of { retries : int option }
    | Backoff of { retries : int; base : int; max_exp : int; seed : int }
    | Stm_tier of { retries : int option; stm_retries : int }

  (* software attempts before the STM tier gives up and takes the lock *)
  let stm_retries_default = 8

  let to_string = function
    | Polite { retries = None } -> "polite"
    | Polite { retries = Some n } -> Printf.sprintf "polite:%d" n
    | Backoff { retries; base; max_exp; seed } ->
      Printf.sprintf "backoff:%d:%d:%d:%d" retries base max_exp seed
    | Stm_tier { retries = None; stm_retries }
      when stm_retries = stm_retries_default -> "htm-stm-lock"
    | Stm_tier { retries = None; stm_retries } ->
      Printf.sprintf "stm:%d" stm_retries
    | Stm_tier { retries = Some r; stm_retries } ->
      Printf.sprintf "htm-stm-lock:%d:%d" r stm_retries

  (* defaults for a bare "backoff": a 10-attempt budget matching the seed
     machine config, a modest base delay, and a cap of 2^8 periods *)
  let backoff_defaults = (10, 16, 8, 0)

  let of_string s =
    match String.split_on_char ':' s with
    | [ "polite" ] -> Ok (Polite { retries = None })
    | [ "polite"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (Polite { retries = Some n })
      | _ -> Error (Printf.sprintf "polite retry budget must be >= 0 in %S" s))
    | "backoff" :: rest -> (
      let dr, db, dm, ds = backoff_defaults in
      let parse def = function
        | None -> Some def
        | Some x -> int_of_string_opt x
      in
      let nth i = List.nth_opt rest i in
      match
        (parse dr (nth 0), parse db (nth 1), parse dm (nth 2), parse ds (nth 3))
      with
      | Some retries, Some base, Some max_exp, Some seed
        when List.length rest <= 4 && retries >= 0 && base > 0 && max_exp >= 0
        ->
        Ok (Backoff { retries; base; max_exp; seed })
      | _ ->
        Error
          (Printf.sprintf
             "bad backoff spec %S (expected backoff[:retries[:base[:max_exp[:seed]]]])"
             s))
    | [ "stm" ] -> Ok (Stm_tier { retries = None; stm_retries = stm_retries_default })
    | [ "stm"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Stm_tier { retries = None; stm_retries = n })
      | _ -> Error (Printf.sprintf "stm retry budget must be > 0 in %S" s))
    | [ "htm-stm-lock" ] ->
      Ok (Stm_tier { retries = None; stm_retries = stm_retries_default })
    | [ "htm-stm-lock"; r ] -> (
      match int_of_string_opt r with
      | Some r when r >= 0 ->
        Ok (Stm_tier { retries = Some r; stm_retries = stm_retries_default })
      | _ ->
        Error (Printf.sprintf "hardware retry budget must be >= 0 in %S" s))
    | [ "htm-stm-lock"; r; n ] -> (
      match (int_of_string_opt r, int_of_string_opt n) with
      | Some r, Some n when r >= 0 && n > 0 ->
        Ok (Stm_tier { retries = Some r; stm_retries = n })
      | _ ->
        Error
          (Printf.sprintf
             "bad htm-stm-lock spec %S (hardware retries >= 0, stm retries > 0)"
             s))
    | _ ->
      Error
        (Printf.sprintf
           "unknown fallback policy %S (expected polite[:N], backoff[:...], \
            htm-stm-lock[:R[:S]], or stm[:N])"
           s)

  let retry_budget t ~default =
    match t with
    | Polite { retries = None } -> default
    | Polite { retries = Some n } -> n
    | Backoff { retries; _ } -> retries
    | Stm_tier { retries = None; _ } -> default
    | Stm_tier { retries = Some n; _ } -> n
end

type t = {
  resolution : Resolution.t;
  capacity : Capacity.t;
  fallback : Fallback.t;
}

let default =
  {
    resolution = Resolution.Requester_wins;
    capacity = Capacity.Unbounded;
    fallback = Fallback.Polite { retries = None };
  }

let make ?(resolution = default.resolution) ?(capacity = default.capacity)
    ?(fallback = default.fallback) () =
  { resolution; capacity; fallback }

let label t =
  String.concat "+"
    [
      Resolution.to_string t.resolution;
      Capacity.to_string t.capacity;
      Fallback.to_string t.fallback;
    ]

let of_label s =
  let ( let* ) = Result.bind in
  match String.split_on_char '+' s with
  | [ r ] ->
    let* resolution = Resolution.of_string r in
    Ok { default with resolution }
  | [ r; c ] ->
    let* resolution = Resolution.of_string r in
    let* capacity = Capacity.of_string c in
    Ok { default with resolution; capacity }
  | [ r; c; f ] ->
    let* resolution = Resolution.of_string r in
    let* capacity = Capacity.of_string c in
    let* fallback = Fallback.of_string f in
    Ok { resolution; capacity; fallback }
  | _ ->
    Error
      (Printf.sprintf "bad policy label %S (expected resolution[+capacity[+fallback]])" s)

let pp fmt t = Format.pp_print_string fmt (label t)
let equal (a : t) (b : t) = a = b

open Stx_core
open Stx_sim
open Stx_workloads

let write_file dir name lines =
  let path = Filename.concat dir name in
  let oc = open_out path in
  List.iter
    (fun row -> output_string oc (String.concat "\t" row ^ "\n"))
    lines;
  close_out oc;
  path

let f = Printf.sprintf "%.4f"

let table1_rows ctx =
  ("benchmark" :: [ "speedup"; "pct_irrevocable"; "wasted_over_useful"; "la"; "lp" ])
  :: List.map
       (fun w ->
         let s = Exp.run ctx w Mode.Baseline in
         [
           w.Workload.name;
           f (Exp.speedup ctx w s);
           f (Stats.pct_irrevocable s);
           f (Stats.wasted_over_useful s);
           f (Stats.locality ~top:2 s.Stats.conf_addr_freq);
           f (Stats.locality ~top:4 s.Stats.conf_pc_freq);
         ])
       Registry.table1_set

let table4_rows ctx =
  ("benchmark" :: [ "source"; "pct_tm"; "speedup"; "aborts_per_commit" ])
  :: List.map
       (fun w ->
         let s = Exp.run ctx w Mode.Baseline in
         [
           w.Workload.name;
           w.Workload.source;
           f (Stats.pct_tx_time s);
           f (Exp.speedup ctx w s);
           f (Stats.aborts_per_commit s);
         ])
       Registry.all

let fig7_rows ctx =
  ("benchmark" :: List.map Mode.to_string Mode.all)
  :: List.map
       (fun w ->
         w.Workload.name
         :: List.map (fun m -> f (Exp.rel_performance ctx w m)) Mode.all)
       Registry.all

let fig8_rows ctx =
  ("benchmark"
  :: [ "aborts_per_commit_htm"; "aborts_per_commit_stag"; "wu_htm"; "wu_stag" ])
  :: List.map
       (fun w ->
         let base = Exp.run ctx w Mode.Baseline in
         let stag = Exp.run ctx w Mode.Staggered_hw in
         [
           w.Workload.name;
           f (Stats.aborts_per_commit base);
           f (Stats.aborts_per_commit stag);
           f (Stats.wasted_over_useful base);
           f (Stats.wasted_over_useful stag);
         ])
       Registry.all

let cells ctx =
  Reports.table1_cells ctx @ Reports.table4_cells ctx @ Reports.fig7_cells ctx
  @ Reports.fig8_cells ctx

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_all ctx ~dir =
  mkdir_p dir;
  [
    write_file dir "table1.tsv" (table1_rows ctx);
    write_file dir "table4.tsv" (table4_rows ctx);
    write_file dir "fig7.tsv" (fig7_rows ctx);
    write_file dir "fig8.tsv" (fig8_rows ctx);
  ]

open Stx_util
open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

let yn share = if share >= 0.5 then "Y" else "N"

(* The cells each report reads from the Exp memo — what a driver should
   Exp.prefetch (through the domain pool) before rendering. Rendering
   never depends on prefetch: a missing cell just simulates on demand. *)

let seq_cells set = List.map (fun w -> (w, Mode.Baseline, 1)) set

let at_modes ctx modes set =
  List.concat_map
    (fun w -> List.map (fun m -> (w, m, Exp.threads ctx)) modes)
    set

let table1_cells ctx =
  seq_cells Registry.table1_set
  @ at_modes ctx [ Mode.Baseline ] Registry.table1_set

let table3_cells ctx =
  List.concat_map
    (fun w ->
      [
        (w, Mode.Baseline, 1);
        (w, Mode.Staggered_hw, 1);
        (w, Mode.Staggered_hw, Exp.threads ctx);
      ])
    Registry.all

let table4_cells ctx =
  seq_cells Registry.all @ at_modes ctx [ Mode.Baseline ] Registry.all

let fig7_cells ctx =
  at_modes ctx
    [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]
    Registry.all

let fig8_cells ctx = at_modes ctx [ Mode.Baseline; Mode.Staggered_hw ] Registry.all

let granularity_cells ctx =
  at_modes ctx [ Mode.Baseline; Mode.Tx_sched; Mode.Staggered_hw ] Registry.all

let scaling_threads = [ 1; 2; 4; 8; 16 ]

let scaling_cells _ctx w =
  List.concat_map
    (fun n -> [ (w, Mode.Baseline, n); (w, Mode.Staggered_hw, n) ])
    scaling_threads

(* hotspots runs its own traced simulation (the attribution needs the
   event stream, not just the cached counters), so nothing to prefetch *)
let hotspot_cells _ctx _w = []

let table1 ctx =
  let t =
    Table.create
      [ "Benchmark"; "S"; "%I"; "W/U"; "Contention Source"; "LA"; "LP" ]
  in
  List.iter
    (fun w ->
      let s = Exp.run ctx w Mode.Baseline in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_f ~dec:1 (Exp.speedup ctx w s);
          Table.fmt_pct (Stats.pct_irrevocable s);
          Table.fmt_f (Stats.wasted_over_useful s);
          w.Workload.contention_source;
          yn (Stats.locality ~top:2 s.Stats.conf_addr_freq);
          (* a benchmark has PC locality when a handful of instructions
             (one per hot atomic block) cover most conflicts *)
          yn (Stats.locality ~top:4 s.Stats.conf_pc_freq);
        ])
    Registry.table1_set;
  "Table 1: HTM contention in representative benchmarks (16-thread baseline).\n"
  ^ "S: speedup over sequential. %I: txns forced irrevocable. W/U: wasted/useful\n"
  ^ "cycles. LA/LP: locality of contention addresses / PCs.\n" ^ Table.render t

let table2 () =
  "Table 2: configuration of the simulated machine.\n"
  ^ Format.asprintf "%a@." Config.pp Config.default

let table3 ctx =
  let t =
    Table.create
      [
        "Program"; "ld/st"; "anchs"; "u-ops/txn"; "anchs/txn"; "time inc";
        "naive inc"; "Accuracy";
      ]
  in
  List.iter
    (fun w ->
      (* static stats from a fresh compile *)
      let compiled = Stx_compiler.Pipeline.compile (w.Workload.build ()) in
      let lds, anchors = Stx_compiler.Pipeline.static_stats compiled in
      (* dynamic stats: single-threaded instrumented vs uninstrumented *)
      let plain = Exp.sequential ctx w in
      let instr = Exp.run_at ctx w Mode.Staggered_hw ~threads:1 in
      let naive_prog = w.Workload.build () in
      let naive =
        let spec =
          {
            Machine.compiled =
              Stx_compiler.Pipeline.compile ~mode:Stx_compiler.Anchors.Naive
                naive_prog;
            Machine.thread_main = "main";
            Machine.thread_args =
              (fun env ~threads -> w.Workload.args ~scale:(Exp.scale ctx) env ~threads);
          }
        in
        Machine.run ~seed:(Exp.seed ctx)
          ~cfg:(Config.with_cores 1 Config.default)
          ~mode:Mode.Staggered_hw spec
      in
      let inc a b = 100. *. (Stat.ratio a b -. 1.) in
      let hi = Exp.run ctx w Mode.Staggered_hw in
      Table.add_row t
        [
          w.Workload.name;
          string_of_int lds;
          string_of_int anchors;
          string_of_int
            (instr.Stats.committed_tx_insts / max 1 instr.Stats.commits);
          Table.fmt_f ~dec:1
            (Stat.ratio instr.Stats.alps_executed instr.Stats.commits);
          Table.fmt_pct ~dec:1
            (inc instr.Stats.total_cycles plain.Stats.total_cycles);
          Table.fmt_pct ~dec:1
            (inc naive.Stats.total_cycles plain.Stats.total_cycles);
          (if hi.Stats.accuracy_total = 0 then "-"
           else Table.fmt_pct ~dec:1 (Stats.accuracy hi));
        ])
    Registry.all;
  "Table 3: instrumentation statistics. Static: loads/stores analyzed and\n"
  ^ "anchors instrumented. Dynamic (1 thread): u-ops and executed anchors per\n"
  ^ "committed txn; execution-time increase of DSA-guided and naive\n"
  ^ "(every-load/store) instrumentation. Accuracy: % of contention aborts at 16\n"
  ^ "threads whose anchor the runtime identified exactly (vs the full-PC oracle).\n"
  ^ Table.render t

let table4 ctx =
  let t =
    Table.create
      [ "Program"; "Source"; "ABs"; "%TM"; "S"; "Abts/C"; "Contention" ]
  in
  List.iter
    (fun w ->
      let s = Exp.run ctx w Mode.Baseline in
      let prog = w.Workload.build () in
      Table.add_row t
        [
          w.Workload.name;
          w.Workload.source;
          string_of_int (Array.length prog.Stx_tir.Ir.atomics);
          Table.fmt_pct (Stats.pct_tx_time s);
          Table.fmt_f ~dec:1 (Exp.speedup ctx w s);
          Table.fmt_f (Stats.aborts_per_commit s);
          w.Workload.contention;
        ])
    Registry.all;
  "Table 4: benchmark characteristics (16-thread baseline HTM).\n"
  ^ "ABs: atomic blocks in the source. %TM: time in transactional mode.\n"
  ^ "S: speedup over sequential. Abts/C: aborts per commit.\n" ^ Table.render t

let bar width x xmax =
  let n = int_of_float (Float.round (x /. xmax *. float_of_int width)) in
  String.make (max 0 (min width n)) '#'

let fig7 ctx =
  let modes = [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ] in
  let t =
    Table.create
      ("Benchmark" :: List.map Mode.to_string modes @ [ "Staggered vs HTM" ])
  in
  let ratios = ref [] in
  List.iter
    (fun w ->
      let perf = List.map (fun m -> Exp.rel_performance ctx w m) modes in
      let stag = List.nth perf 3 in
      ratios := stag :: !ratios;
      Table.add_row t
        (w.Workload.name
        :: List.map (Table.fmt_f ~dec:2) perf
        @ [ bar 24 stag 2.0 ]))
    Registry.all;
  let hmean = Stat.harmonic_mean !ratios in
  "Figure 7: performance at 16 threads, normalized to the baseline HTM\n"
  ^ "(higher is better; bar scale 0..2x).\n" ^ Table.render t
  ^ Printf.sprintf
      "Harmonic mean of Staggered/HTM across all benchmarks: %.2fx (%+.0f%%)\n"
      hmean
      (100. *. (hmean -. 1.))

let fig8 ctx =
  let t =
    Table.create
      [
        "Benchmark"; "(a) A/C HTM"; "(a) A/C Stag"; "(b) W/U HTM"; "(b) W/U Stag";
        "abort cut";
      ]
  in
  let cuts = ref [] in
  List.iter
    (fun w ->
      let base = Exp.run ctx w Mode.Baseline in
      let stag = Exp.run ctx w Mode.Staggered_hw in
      let cut =
        100. *. (1. -. Stat.ratio stag.Stats.aborts (max 1 base.Stats.aborts))
      in
      (* like the paper, skip benchmarks with too few aborts to be
         meaningful when averaging the cut *)
      if base.Stats.aborts > base.Stats.commits / 10 then cuts := cut :: !cuts;
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_f (Stats.aborts_per_commit base);
          Table.fmt_f (Stats.aborts_per_commit stag);
          Table.fmt_f (Stats.wasted_over_useful base);
          Table.fmt_f (Stats.wasted_over_useful stag);
          Table.fmt_pct cut;
        ])
    Registry.all;
  let avg =
    if !cuts = [] then 0.
    else List.fold_left ( +. ) 0. !cuts /. float_of_int (List.length !cuts)
  in
  "Figure 8: (a) aborts per commit and (b) wasted/useful cycles,\n"
  ^ "baseline HTM vs Staggered Transactions, 16 threads.\n" ^ Table.render t
  ^ Printf.sprintf
      "Average abort reduction (benchmarks with meaningful abort counts): %.0f%%\n"
      avg

(* the paper repeats each run 5 times and reports the average; this variant
   of Figure 7 does the same across seeds and also reports the spread *)
let fig7_repeated ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(jobs = 1) ?store ~scale ~threads
    () =
  let ctxs =
    List.map
      (fun seed ->
        let ctx = Exp.create ~seed ~scale ~threads ~jobs ?store () in
        Exp.prefetch ctx (fig8_cells ctx);
        ctx)
      seeds
  in
  let t =
    Table.create [ "Benchmark"; "Staggered vs HTM (mean)"; "stddev"; "min"; "max" ]
  in
  let means = ref [] in
  List.iter
    (fun w ->
      let acc = Stat.create () in
      List.iter
        (fun ctx -> Stat.add acc (Exp.rel_performance ctx w Mode.Staggered_hw))
        ctxs;
      means := Stat.mean acc :: !means;
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_f (Stat.mean acc);
          Table.fmt_f ~dec:3 (Stat.stddev acc);
          Table.fmt_f (Stat.min acc);
          Table.fmt_f (Stat.max acc);
        ])
    Registry.all;
  let hmean = Stat.harmonic_mean !means in
  Printf.sprintf
    "Figure 7 across %d seeds (the paper averages 5 repetitions per run).
%s     Harmonic mean of per-benchmark means: %.2fx (%+.0f%%)
"
    (List.length seeds) (Table.render t) hmean
    (100. *. (hmean -. 1.))

(* Result 2's comparison: whole-transaction scheduling serializes entire
   atomic blocks; staggering serializes only the conflicting portions *)
let granularity ctx =
  let t =
    Table.create [ "Benchmark"; "HTM"; "TxSched (whole txn)"; "Staggered (portion)" ]
  in
  List.iter
    (fun w ->
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_f ~dec:2 (Exp.rel_performance ctx w Mode.Baseline);
          Table.fmt_f ~dec:2 (Exp.rel_performance ctx w Mode.Tx_sched);
          Table.fmt_f ~dec:2 (Exp.rel_performance ctx w Mode.Staggered_hw);
        ])
    Registry.all;
  "Serialization granularity (cf. Result 2 and the Proactive Transaction
   Scheduling comparison in the related work): serializing whole
   transactions vs staggering only their conflicting portions.
"
  ^ Table.render t

(* Figure 1: three-plus transactions whose conflicting access sits in the
   middle; show the baseline thrash and the staggered schedule side by
   side, reconstructed from real runs *)
let fig1 () =
  let open Stx_tir in
  let build () =
    let p = Ir.create_program () in
    Ir.add_struct p (Types.make "cnt" [ ("value", Types.Scalar) ]);
    let b = Builder.create p "deposit" ~params:[ "cnt" ] in
    Builder.work b (Ir.Imm 150);
    let v = Builder.load b (Builder.gep b (Builder.param b "cnt") "cnt" "value") in
    Builder.work b (Ir.Imm 110);
    Builder.store b
      ~addr:(Builder.gep b (Builder.param b "cnt") "cnt" "value")
      (Builder.bin b Ir.Add v (Ir.Imm 1));
    Builder.ret b None;
    ignore (Builder.finish b);
    let ab = Ir.add_atomic p ~name:"deposit" ~func:"deposit" in
    let b = Builder.create p "main" ~params:[ "cnt"; "rounds" ] in
    Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "rounds") (fun b _ ->
        Builder.atomic_call b ab [ Builder.param b "cnt" ]);
    Builder.ret b None;
    ignore (Builder.finish b);
    p
  in
  let run mode =
    let compiled = Stx_compiler.Pipeline.compile (build ()) in
    let spec =
      {
        Machine.compiled;
        Machine.thread_main = "main";
        Machine.thread_args =
          (fun env ~threads ->
            let addr = Stx_machine.Alloc.alloc_shared env.Machine.alloc 1 in
            Array.make threads [| addr; 24 |]);
      }
    in
    let tl = Timeline.create ~threads:3 in
    (* the schematic wants the pure mechanism: no probing, full convoys *)
    let policy = { Policy.default_params with Policy.probe_period = max_int } in
    let stats =
      Machine.run ~seed:5 ~policy ~max_waiters:16
        ~cfg:(Stx_machine.Config.with_cores 3 Stx_machine.Config.default)
        ~mode ~on_event:(Timeline.handler tl) spec
    in
    (stats, tl)
  in
  let base, tl_base = run Mode.Baseline in
  let stag, tl_stag = run Mode.Staggered_hw in
  (* the staggered lanes are most instructive once training has converged:
     show matching windows from the middle of each run *)
  let window stats = (stats.Stats.total_cycles / 2, stats.Stats.total_cycles * 4 / 5) in
  let b0, b1 = window base and s0, s1 = window stag in
  Printf.sprintf
    "Figure 1: three threads, conflicting access mid-transaction\n\
     (matching mid-run windows; training has converged).\n\n\
     (a) eager HTM baseline - %d aborts, %d cycles:\n%s\n\
     (c) Staggered Transactions - %d aborts, %d cycles\n\
     (conflicting suffixes serialize behind the advisory lock, prefixes overlap):\n%s"
    base.Stats.aborts base.Stats.total_cycles
    (Timeline.render ~width:96 ~from_time:b0 ~until_time:b1 tl_base)
    stag.Stats.aborts stag.Stats.total_cycles
    (Timeline.render ~width:96 ~from_time:s0 ~until_time:s1 tl_stag)

let anchor_tables w =
  let compiled = Stx_compiler.Pipeline.compile (w.Workload.build ()) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Unified anchor tables for %s (cf. Figure 3):\n" w.Workload.name);
  Array.iter
    (fun table ->
      Buffer.add_string buf (Format.asprintf "%a@." Stx_compiler.Unified.pp table))
    compiled.Stx_compiler.Pipeline.unified;
  Buffer.contents buf

let hotspots ctx w =
  (* trace-backed: rerun the baseline with a full-capture trace attached.
     The frequency tables could come from the cached counters, but the
     aggressor -> victim attribution only exists in the event stream — and
     replaying it through Trace.check keeps the two accounting paths
     honest on the way *)
  let module Trace = Stx_trace.Trace in
  let threads = Exp.threads ctx in
  let tr = Trace.create ~threads () in
  let spec = Workload.spec ~instrument:false ~scale:(Exp.scale ctx) w in
  let stats =
    Machine.run ~seed:(Exp.seed ctx)
      ~cfg:(Config.with_cores threads Config.default)
      ~mode:Mode.Baseline
      ~on_event:(Trace.handler tr)
      spec
  in
  let a = Trace.abort_attribution tr in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let t = Table.create [ "conflicting line"; "aborts"; "share" ] in
  List.iter
    (fun (line, c) ->
      Table.add_row t
        [
          string_of_int line;
          string_of_int c;
          Table.fmt_pct (Stat.percent c a.Trace.conflict_aborts);
        ])
    (take 8 a.Trace.by_line);
  let unified = spec.Machine.compiled.Stx_compiler.Pipeline.unified in
  let tag_ambiguous pc =
    Array.exists (fun tb -> Stx_compiler.Unified.tag_ambiguous tb pc) unified
  in
  (* line-plane attribution of each hot tag: resolve the victim access
     the tag names and ask the layout plane whether the conflicting
     pairs that reach it share the field (true) or only the line
     (false). Ambiguous tags cannot be resolved; "-" = no conflicting
     pair reaches the access (e.g. an anchor entry nothing collides
     with at line granularity). *)
  let module An = Stx_analysis in
  let analysis =
    An.Driver.analyze ~name:w.Workload.name spec.Machine.compiled
  in
  let plane = analysis.An.Driver.a_plane in
  let graph = analysis.An.Driver.a_graph in
  let compiled = spec.Machine.compiled in
  let sharing_of_pc pc =
    if tag_ambiguous pc then "ambiguous"
    else begin
      (* one iid can appear in several entries (one per calling context)
         and in several blocks' tables; the tag cannot tell which the
         victim executed, so fold the verdict over every match *)
      let matches = ref [] in
      Array.iter
        (fun tb ->
          Array.iter
            (fun (e : Stx_compiler.Unified.entry) ->
              let p =
                Stx_tir.Layout.pc_of_iid
                  compiled.Stx_compiler.Pipeline.layout
                  e.Stx_compiler.Unified.ue_iid
              in
              if
                Stx_tir.Layout.truncate
                  ~bits:compiled.Stx_compiler.Pipeline.pc_bits p
                = pc
              then matches := (Stx_compiler.Unified.ab_id tb, e) :: !matches)
            (Stx_compiler.Unified.entries tb))
        unified;
      let verdict =
        List.fold_left
          (fun acc (ab, (e : Stx_compiler.Unified.entry)) ->
            match
              Stx_dsa.Dsa.access_node compiled.Stx_compiler.Pipeline.dsa
                e.Stx_compiler.Unified.ue_iid
            with
            | None -> acc
            | Some (_, field) -> (
              match
                An.Conflict.to_global graph ~ab e.Stx_compiler.Unified.ue_node
              with
              | [] -> acc
              | gids ->
                List.fold_left
                  (fun acc (src, dst, _) ->
                    if dst <> ab then acc
                    else
                      match
                        An.Layout.classify_conflict plane ~src ~dst ~gids
                          ~field
                      with
                      | An.Layout.Attributed An.Layout.True_sharing -> `True
                      | An.Layout.Attributed An.Layout.False_sharing ->
                        if acc = `True then `True else `False
                      | An.Layout.Unpredicted -> acc)
                  acc (An.Layout.edges plane)))
          `None !matches
      in
      match verdict with `True -> "true" | `False -> "false" | `None -> "-"
    end
  in
  let t2 =
    Table.create [ "conflicting PC tag"; "aborts"; "share"; "lookup"; "sharing" ]
  in
  List.iter
    (fun (pc, c) ->
      Table.add_row t2
        [
          Printf.sprintf "0x%03x" pc;
          string_of_int c;
          Table.fmt_pct (Stat.percent c a.Trace.conflict_aborts);
          (if tag_ambiguous pc then "ambiguous" else "unique");
          sharing_of_pc pc;
        ])
    (take 8 a.Trace.by_pc);
  let t3 = Table.create [ "atomic block"; "conflict aborts"; "share" ] in
  List.iter
    (fun (ab, c) ->
      Table.add_row t3
        [
          Printf.sprintf "ab%d" ab;
          string_of_int c;
          Table.fmt_pct (Stat.percent c a.Trace.conflict_aborts);
        ])
    (take 8 a.Trace.by_ab);
  (* aggressor -> victim matrix, aggressors with casualties only *)
  let tm =
    Table.create
      ("agg \\ vic" :: List.init threads (fun v -> Printf.sprintf "t%d" v))
  in
  for agg = 0 to threads - 1 do
    let row_total = Array.fold_left ( + ) 0 a.Trace.agg_matrix.(agg) in
    if row_total > 0 then
      Table.add_row tm
        (Printf.sprintf "t%d" agg
        :: List.init threads (fun v ->
               match a.Trace.agg_matrix.(agg).(v) with
               | 0 -> "."
               | c -> string_of_int c))
  done;
  let health =
    match Trace.check tr stats with
    | Ok () -> ""
    | Error errs ->
      "\nWARNING: trace/stats divergence detected:\n  "
      ^ String.concat "\n  " errs ^ "\n"
  in
  let collisions =
    let per_table =
      Array.to_list unified
      |> List.concat_map (fun tb ->
             match Stx_compiler.Unified.collisions tb with
             | [] -> []
             | cs ->
               [
                 Printf.sprintf "  ab%d: %d shadowed entr(ies) behind tag(s) %s"
                   (Stx_compiler.Unified.ab_id tb)
                   (Stx_compiler.Unified.collision_count tb)
                   (String.concat " "
                      (List.map
                         (fun (tag, _) -> Printf.sprintf "0x%03x" tag)
                         cs));
               ])
    in
    match per_table with
    | [] -> "Truncated-PC tags are collision-free in every unified table.\n"
    | ls ->
      "Truncated-PC tag collisions (hardware lookups resolve to the first \
       entry):\n" ^ String.concat "\n" ls ^ "\n"
  in
  Printf.sprintf
    "Conflict hot spots of %s (baseline, %d threads): the raw material the
     locking policy works from. Trace-backed: %d events, %d conflict aborts
     (%d of them without an attributable aggressor).
%s
%s
%s
%s
Aggressor -> victim conflict aborts (rows: aggressor core; '.' = 0):
%s%s"
    w.Workload.name threads (Trace.length tr) a.Trace.conflict_aborts
    a.Trace.unattributed (Table.render t) (Table.render t2) (Table.render t3)
    collisions (Table.render tm) health

let profile_modes =
  [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]

let profile_cells ctx w =
  List.map (fun m -> (w, m, Exp.threads ctx)) profile_modes

let profile ctx w =
  let module C = Stx_metrics.Collect in
  let module MR = Stx_metrics.Registry in
  let module H = Stx_metrics.Hist in
  let prog = w.Workload.build () in
  let ab_name id =
    let atomics = prog.Stx_tir.Ir.atomics in
    if id >= 0 && id < Array.length atomics then
      Printf.sprintf "%d:%s" id atomics.(id).Stx_tir.Ir.ab_name
    else string_of_int id
  in
  let t =
    Table.create
      [
        "Mode"; "atomic block"; "prefix"; "lock wait"; "suffix"; "irrev";
        "suffix%"; "wasted"; "backoff";
      ]
  in
  List.iter
    (fun m ->
      let reg = Exp.metrics ctx w m in
      List.iter
        (fun ab ->
          let p ph = C.phase_cycles reg ~ab ph in
          let prefix = p C.Prefix
          and wait = p C.Lock_wait
          and suffix = p C.Suffix
          and irrev = p C.Irrevocable in
          let committed = prefix + wait + suffix + irrev in
          Table.add_row t
            [
              Mode.to_string m;
              ab_name ab;
              string_of_int prefix;
              string_of_int wait;
              string_of_int suffix;
              string_of_int irrev;
              Table.fmt_pct ~dec:1 (Stat.percent suffix (max 1 committed));
              string_of_int (p C.Wasted);
              string_of_int (p C.Backoff);
            ])
        (C.abs_profiled reg))
    profile_modes;
  let lt =
    Table.create
      [
        "Mode"; "commit p50"; "commit p99"; "abort p99"; "retries mean";
        "lock-wait p99";
      ]
  in
  List.iter
    (fun m ->
      let reg = Exp.metrics ctx w m in
      let q f = function Some h -> string_of_int (f h) | None -> "-" in
      let commit_h =
        MR.histogram reg "stx_tx_latency_cycles" [ ("outcome", "commit") ]
      in
      let abort_h =
        MR.histogram reg "stx_tx_latency_cycles" [ ("outcome", "abort") ]
      in
      let retries = MR.histogram reg "stx_tx_retries" [] in
      let wait_h =
        MR.histogram reg "stx_lock_wait_cycles" [ ("outcome", "acquired") ]
      in
      Table.add_row lt
        [
          Mode.to_string m;
          q H.p50 commit_h;
          q H.p99 commit_h;
          q H.p99 abort_h;
          (match retries with
          | Some h -> Table.fmt_f ~dec:2 (H.mean h)
          | None -> "-");
          q H.p99 wait_h;
        ])
    profile_modes;
  Printf.sprintf
    "Phase profile of %s (%d threads): committed transaction cycles split at\n\
     the first advisory-lock acquire — speculative prefix runs in parallel,\n\
     the suffix is serialized behind the lock. The baseline takes no advisory\n\
     locks, so its committed cycles are all prefix; staggered modes serialize\n\
     only the conflicting portion (cf. Figure 1 and Result 2).\n%s\n\
     Per-attempt distributions (cycles; quantiles bucketed to powers of two):\n%s"
    w.Workload.name (Exp.threads ctx) (Table.render t) (Table.render lt)

let profile_tsv ctx w =
  let module C = Stx_metrics.Collect in
  let prog = w.Workload.build () in
  let ab_name id =
    let atomics = prog.Stx_tir.Ir.atomics in
    if id >= 0 && id < Array.length atomics then atomics.(id).Stx_tir.Ir.ab_name
    else string_of_int id
  in
  let esc = Stx_analysis.Diag.tsv_escape in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "workload\tmode\tab\tab_name\tprefix\tlock_wait\tsuffix\tirrevocable\tstm\twasted\tbackoff\n";
  List.iter
    (fun m ->
      let reg = Exp.metrics ctx w m in
      List.iter
        (fun ab ->
          let p ph = C.phase_cycles reg ~ab ph in
          Buffer.add_string b
            (String.concat "\t"
               [
                 esc w.Workload.name;
                 Mode.to_string m;
                 string_of_int ab;
                 esc (ab_name ab);
                 string_of_int (p C.Prefix);
                 string_of_int (p C.Lock_wait);
                 string_of_int (p C.Suffix);
                 string_of_int (p C.Irrevocable);
                 string_of_int (p C.Stm);
                 string_of_int (p C.Wasted);
                 string_of_int (p C.Backoff);
               ]);
          Buffer.add_char b '\n')
        (C.abs_profiled reg))
    profile_modes;
  Buffer.contents b

let scaling ctx w =
  let t = Table.create [ "Threads"; "HTM speedup"; "Staggered speedup" ] in
  List.iter
    (fun n ->
      let base = Exp.run_at ctx w Mode.Baseline ~threads:n in
      let stag = Exp.run_at ctx w Mode.Staggered_hw ~threads:n in
      Table.add_row t
        [
          string_of_int n;
          Table.fmt_f (Exp.speedup ctx w base);
          Table.fmt_f (Exp.speedup ctx w stag);
        ])
    [ 1; 2; 4; 8; 16 ];
  Printf.sprintf "Scalability of %s:\n" w.Workload.name ^ Table.render t

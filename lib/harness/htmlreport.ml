open Stx_core
open Stx_sim
module Series = Stx_telemetry.Series
module Episodes = Stx_telemetry.Episodes
module C = Stx_metrics.Collect

type input = {
  workload : string;
  mode : Mode.t;
  seed : int;
  scale : float;
  threads : int;
  policy : Stx_policy.t;
  series : Series.t;
  episodes : Episodes.t list;
  stats : Stats.t;
  registry : Stx_metrics.Registry.t;
  attribution : Stx_trace.Trace.attribution;
  ab_name : int -> string;
}

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- chart geometry ----------------------------------------------------
   Window i owns the horizontal cell [i*W/n, (i+1)*W/n); polylines pass
   through cell centers so point series and cell-spanning shading (storm
   rects, heat cells) line up. All coordinates are integer pixels, so the
   SVG text is a function of the integers alone. *)

let chart_w = 720

let cell_x n i = i * chart_w / max 1 n
let cell_w n i = cell_x n (i + 1) - cell_x n i
let center_x n i = ((2 * i) + 1) * chart_w / (2 * max 1 n)

let polyline_points ~h vmax values =
  let n = Array.length values in
  let b = Buffer.create 256 in
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ' ';
      let y = h - (v * (h - 2) / max 1 vmax) - 1 in
      Buffer.add_string b (Printf.sprintf "%d,%d" (center_x n i) y))
    values;
  Buffer.contents b

(* Shaded spans and vertical markers annotate episodes onto a chart. *)
type marks = {
  shade : (int * int * string) list;  (** first, last (incl.), fill *)
  vline : (int * string) list;  (** window, stroke *)
}

let no_marks = { shade = []; vline = [] }

let svg_marks buf ~h ~n m =
  List.iter
    (fun (first, last, fill) ->
      let x0 = cell_x n first in
      let x1 = cell_x n (last + 1) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"%s\" \
            fill-opacity=\"0.25\"/>"
           x0 (max 1 (x1 - x0)) h fill))
    m.shade;
  List.iter
    (fun (w, stroke) ->
      let x = center_x n w in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"0\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
            stroke-width=\"2\" stroke-dasharray=\"3,2\"/>"
           x x h stroke))
    m.vline

let sparkline buf ~label ?(h = 48) ?(color = "#1565c0") ?(marks = no_marks)
    values =
  let n = Array.length values in
  let vmax = Array.fold_left max 0 values in
  Buffer.add_string buf
    (Printf.sprintf
       "<div class=\"spark\"><div class=\"spark-label\">%s <span \
        class=\"spark-max\">max %d/window</span></div>"
       (esc label) vmax);
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" \
        role=\"img\" aria-label=\"%s\">"
       chart_w h chart_w h (esc label));
  svg_marks buf ~h ~n marks;
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"0\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ccc\"/>"
       (h - 1) chart_w (h - 1));
  if vmax > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
          stroke-width=\"1.5\"/>"
         (polyline_points ~h vmax values) color);
  Buffer.add_string buf "</svg></div>\n"

(* Per-core occupancy: one row of cells per core, darkness = busy
   fraction of the window. *)
let heat_strip buf (s : Series.t) =
  let n = Array.length s.windows in
  let row_h = 13 in
  let h = s.threads * row_h in
  Buffer.add_string buf
    "<div class=\"spark\"><div class=\"spark-label\">per-core busy fraction \
     (row per core, darker = busier)</div>";
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" \
        aria-label=\"per-core busy fraction\">"
       chart_w h chart_w h);
  for core = 0 to s.threads - 1 do
    Array.iteri
      (fun i (w : Series.window) ->
        let busy = if core < Array.length w.busy then w.busy.(core) else 0 in
        let pct = min 100 (busy * 100 / max 1 s.width) in
        if pct > 0 then
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                fill=\"#0d47a1\" fill-opacity=\"%d.%02d\"/>"
               (cell_x n i) (core * row_h)
               (max 1 (cell_w n i))
               (row_h - 1) (pct / 100) (pct mod 100)))
      s.windows
  done;
  Buffer.add_string buf "</svg></div>\n"

let episode_marks episodes =
  List.fold_left
    (fun m e ->
      match e with
      | Episodes.Conflict_storm { first; last; _ } ->
        { m with shade = (first, last, "#e53935") :: m.shade }
      | Episodes.Saturation { onset } ->
        { m with vline = (onset, "#6a1b9a") :: m.vline }
      | Episodes.Tier_shift { window; _ } ->
        { m with vline = (window, "#ef6c00") :: m.vline })
    no_marks episodes

(* --- tables ------------------------------------------------------------ *)

let table buf ~cls headers rows =
  Buffer.add_string buf (Printf.sprintf "<table class=\"%s\"><tr>" cls);
  List.iter
    (fun hd -> Buffer.add_string buf ("<th>" ^ esc hd ^ "</th>"))
    headers;
  Buffer.add_string buf "</tr>";
  List.iter
    (fun row ->
      Buffer.add_string buf "<tr>";
      List.iter
        (fun cell -> Buffer.add_string buf ("<td>" ^ esc cell ^ "</td>"))
        row;
      Buffer.add_string buf "</tr>")
    rows;
  Buffer.add_string buf "</table>\n"

let hotspot_rows pairs =
  let top = List.filteri (fun i _ -> i < 10) pairs in
  let vmax = List.fold_left (fun m (_, c) -> max m c) 1 top in
  List.map
    (fun (id, c) ->
      let bar = String.make (max 1 (c * 30 / vmax)) '#' in
      [ string_of_int id; string_of_int c; bar ])
    top

(* --- phase profile ----------------------------------------------------- *)

let phases =
  [
    (C.Prefix, "prefix", "#1565c0");
    (C.Lock_wait, "lock wait", "#ef6c00");
    (C.Suffix, "suffix", "#c62828");
    (C.Irrevocable, "irrevocable", "#4a148c");
    (C.Stm, "stm", "#00695c");
    (C.Wasted, "wasted", "#9e9e9e");
    (C.Backoff, "backoff", "#cfcfcf");
  ]

let phase_profile buf inp =
  let abs = C.abs_profiled inp.registry in
  if abs <> [] then begin
    Buffer.add_string buf "<h2>Per-atomic-block phase profile</h2>\n";
    Buffer.add_string buf "<div class=\"legend\">";
    List.iter
      (fun (_, name, color) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<span class=\"key\"><span class=\"swatch\" \
              style=\"background:%s\"></span>%s</span>"
             color (esc name)))
      phases;
    Buffer.add_string buf "</div>\n";
    let cycles ab = List.map (fun (ph, _, _) -> C.phase_cycles inp.registry ~ab ph) phases in
    let totals = List.map (fun ab -> (ab, cycles ab)) abs in
    let tmax =
      List.fold_left
        (fun m (_, cs) -> max m (List.fold_left ( + ) 0 cs))
        1 totals
    in
    List.iter
      (fun (ab, cs) ->
        let total = List.fold_left ( + ) 0 cs in
        Buffer.add_string buf
          (Printf.sprintf
             "<div class=\"bar-row\"><div class=\"bar-label\">%s</div>"
             (esc (inp.ab_name ab)));
        Buffer.add_string buf
          (Printf.sprintf
             "<svg width=\"%d\" height=\"18\" viewBox=\"0 0 %d 18\">" chart_w
             chart_w);
        let x = ref 0 in
        List.iter2
          (fun (_, name, color) c ->
            let w = c * chart_w / tmax in
            if w > 0 then begin
              Buffer.add_string buf
                (Printf.sprintf
                   "<rect x=\"%d\" y=\"1\" width=\"%d\" height=\"16\" \
                    fill=\"%s\"><title>%s: %d cycles</title></rect>"
                   !x w color (esc name) c);
              x := !x + w
            end)
          phases cs;
        Buffer.add_string buf
          (Printf.sprintf "</svg><div class=\"bar-total\">%d</div></div>\n"
             total))
      totals;
    table buf ~cls:"num"
      ("atomic block" :: List.map (fun (_, n, _) -> n) phases)
      (List.map
         (fun (ab, cs) -> inp.ab_name ab :: List.map string_of_int cs)
         totals)
  end

(* --- document ----------------------------------------------------------- *)

let css =
  "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:820px;\
   color:#212121}\n\
   h1{font-size:20px;border-bottom:2px solid #1565c0;padding-bottom:6px}\n\
   h2{font-size:16px;margin-top:28px}\n\
   table{border-collapse:collapse;margin:8px 0}\n\
   th,td{border:1px solid #ddd;padding:3px 8px;text-align:left}\n\
   th{background:#f5f5f5}\n\
   table.num td{text-align:right;font-variant-numeric:tabular-nums}\n\
   table.num td:first-child{text-align:left}\n\
   .spark{margin:10px 0}\n\
   .spark-label{font-size:12px;color:#555;margin-bottom:2px}\n\
   .spark-max{color:#999}\n\
   .legend{font-size:12px;margin:6px 0}\n\
   .key{margin-right:12px}\n\
   .swatch{display:inline-block;width:10px;height:10px;margin-right:4px}\n\
   .bar-row{display:flex;align-items:center;gap:8px;margin:2px 0}\n\
   .bar-label{width:180px;font-size:12px;text-align:right;\
   overflow:hidden;text-overflow:ellipsis;white-space:nowrap}\n\
   .bar-total{font-size:12px;color:#555}\n\
   .episode{padding:4px 8px;margin:4px 0;border-left:4px solid #6a1b9a;\
   background:#f3e5f5;font-size:13px}\n\
   .episode.storm{border-color:#e53935;background:#ffebee}\n\
   .episode.shift{border-color:#ef6c00;background:#fff3e0}\n\
   .muted{color:#777;font-size:12px}\n"

let render inp =
  let s = inp.stats in
  let series = inp.series in
  let buf = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  pf "<title>stx run report: %s / %s</title>\n" (esc inp.workload)
    (esc (Mode.to_string inp.mode));
  pf "<style>\n%s</style>\n</head>\n<body>\n" css;
  pf "<h1>stx run report: %s under %s</h1>\n" (esc inp.workload)
    (esc (Mode.to_string inp.mode));

  (* run parameters and the policy bundle *)
  pf "<h2>Run</h2>\n";
  table buf ~cls:"params"
    [ "parameter"; "value" ]
    [
      [ "workload"; inp.workload ];
      [ "mode"; Mode.to_string inp.mode ];
      [ "seed"; string_of_int inp.seed ];
      [ "scale"; Printf.sprintf "%g" inp.scale ];
      [ "threads"; string_of_int inp.threads ];
      [ "policy"; Stx_policy.label inp.policy ];
      [
        "resolution";
        Stx_policy.Resolution.to_string inp.policy.Stx_policy.resolution;
      ];
      [
        "capacity"; Stx_policy.Capacity.to_string inp.policy.Stx_policy.capacity;
      ];
      [
        "fallback"; Stx_policy.Fallback.to_string inp.policy.Stx_policy.fallback;
      ];
      [
        "telemetry window";
        Printf.sprintf "%d cycles x %d windows" series.Series.width
          (Series.length series);
      ];
    ];

  (* headline statistics *)
  pf "<h2>Outcome</h2>\n";
  let pct a b = Printf.sprintf "%.1f%%" (100. *. float a /. float (max 1 b)) in
  table buf ~cls:"num"
    [ "metric"; "value" ]
    [
      [ "total cycles"; string_of_int s.Stats.total_cycles ];
      [ "commits"; string_of_int s.Stats.commits ];
      [ "aborts"; string_of_int s.Stats.aborts ];
      [ "abort rate"; pct s.Stats.aborts (s.Stats.commits + s.Stats.aborts) ];
      [ "conflict aborts"; string_of_int s.Stats.conflict_aborts ];
      [ "lock-subscription aborts"; string_of_int s.Stats.lock_sub_aborts ];
      [ "capacity aborts"; string_of_int s.Stats.capacity_aborts ];
      [ "stm-conflict aborts"; string_of_int s.Stats.stm_conflict_aborts ];
      [ "stm commits"; string_of_int s.Stats.stm_commits ];
      [ "irrevocable entries"; string_of_int s.Stats.irrevocable_entries ];
      [ "advisory-lock acquires"; string_of_int s.Stats.lock_acquires ];
      [ "advisory-lock timeouts"; string_of_int s.Stats.lock_timeouts ];
      [ "wasted cycles"; string_of_int s.Stats.wasted_cycles ];
    ];

  (* episodes *)
  pf "<h2>Episodes</h2>\n";
  if inp.episodes = [] then pf "<p class=\"muted\">none detected</p>\n"
  else
    List.iter
      (fun e ->
        let cls =
          match e with
          | Episodes.Conflict_storm _ -> "episode storm"
          | Episodes.Saturation _ -> "episode"
          | Episodes.Tier_shift _ -> "episode shift"
        in
        pf "<div class=\"%s\">%s</div>\n" cls
          (esc (Episodes.to_string series e)))
      inp.episodes;

  (* window series *)
  pf "<h2>Time series (%d-cycle windows)</h2>\n" series.Series.width;
  let marks = episode_marks inp.episodes in
  let col f = Array.map f series.Series.windows in
  sparkline buf ~label:"commits (all tiers)" ~marks (col Series.commits);
  sparkline buf ~label:"aborts (all kinds)" ~color:"#c62828" ~marks
    (col Series.aborts);
  sparkline buf ~label:"conflict aborts" ~color:"#e53935" ~marks
    (col (fun w -> w.Series.conflict_aborts));
  sparkline buf ~label:"advisory-lock waits begun" ~color:"#ef6c00"
    (col (fun w -> w.Series.lock_waits));
  if Array.exists (fun (w : Series.window) -> w.Series.stm_cycles > 0)
       series.Series.windows
  then
    sparkline buf ~label:"stm-tier occupancy (cycles)" ~color:"#00695c" ~marks
      (col (fun w -> w.Series.stm_cycles));
  if Array.exists (fun (w : Series.window) -> w.Series.lock_cycles > 0)
       series.Series.windows
  then
    sparkline buf ~label:"global-lock occupancy (cycles)" ~color:"#4a148c"
      ~marks
      (col (fun w -> w.Series.lock_cycles));
  if Array.exists (fun (w : Series.window) -> w.Series.offered > 0)
       series.Series.windows
  then begin
    sparkline buf ~label:"offered requests" ~color:"#2e7d32"
      (col (fun w -> w.Series.offered));
    sparkline buf ~label:"completed requests" ~color:"#1565c0" ~marks
      (col (fun w -> w.Series.completed))
  end;
  heat_strip buf series;

  (* conflict hot spots *)
  let a = inp.attribution in
  pf "<h2>Conflict hot spots</h2>\n";
  pf
    "<p class=\"muted\">%d conflict aborts in the trace, %d without an \
     attributable aggressor</p>\n"
    a.Stx_trace.Trace.conflict_aborts a.Stx_trace.Trace.unattributed;
  if a.Stx_trace.Trace.by_line <> [] then
    table buf ~cls:"num"
      [ "cache line"; "conflict aborts"; "" ]
      (hotspot_rows a.Stx_trace.Trace.by_line);
  if a.Stx_trace.Trace.by_pc <> [] then
    table buf ~cls:"num"
      [ "PC tag"; "conflict aborts"; "" ]
      (hotspot_rows a.Stx_trace.Trace.by_pc);
  if a.Stx_trace.Trace.by_ab <> [] then
    table buf ~cls:"num"
      [ "atomic block"; "conflict aborts"; "" ]
      (List.map
         (fun row ->
           match row with
           | [ id; c; bar ] -> (
             match int_of_string_opt id with
             | Some ab -> [ inp.ab_name ab; c; bar ]
             | None -> row)
           | row -> row)
         (hotspot_rows a.Stx_trace.Trace.by_ab));

  phase_profile buf inp;

  pf "</body>\n</html>\n";
  Buffer.contents buf

open Stx_core
open Stx_sim
open Stx_metrics
open Stx_workloads
open Stx_runner

type cell = Workload.t * Mode.t * int

type t = {
  seed : int;
  scale : float;
  threads : int;
  jobs : int;
  policy : Stx_policy.t;
  store : Store.t option;
  memo : (string * string * int, Run.t) Hashtbl.t;
}

let create ?(seed = 1) ?(scale = 1.0) ?(threads = 16) ?(jobs = 1)
    ?(policy = Stx_policy.default) ?store () =
  { seed; scale; threads; jobs; policy; store; memo = Hashtbl.create 64 }

let seed t = t.seed
let scale t = t.scale
let threads t = t.threads
let jobs t = t.jobs
let policy t = t.policy
let store t = t.store

let mode_key m = Mode.to_string m

(* the memo key omits the policy: a context runs every cell under its
   one bundle, so the (workload, mode, threads) coordinate is unique *)
let job_of t (w : Workload.t) mode ~threads =
  Job.make ~policy:t.policy ~workload:w.Workload.name ~mode ~threads
    ~seed:t.seed ~scale:t.scale ()

let memo_key (w : Workload.t) mode threads = (w.Workload.name, mode_key mode, threads)

let measure_at t w mode ~threads =
  let key = memo_key w mode threads in
  match Hashtbl.find_opt t.memo key with
  | Some r -> r
  | None ->
    let job = job_of t w mode ~threads in
    let r =
      match Option.bind t.store (fun st -> Store.load st ~key:(Job.digest job)) with
      | Some r -> r
      | None ->
        let r = Sweep.run_job job in
        Option.iter (fun st -> Store.save st ~key:(Job.digest job) r) t.store;
        r
    in
    Hashtbl.add t.memo key r;
    r

let measure t w mode = measure_at t w mode ~threads:t.threads
let run_at t w mode ~threads = (measure_at t w mode ~threads).Run.stats
let run t w mode = run_at t w mode ~threads:t.threads
let metrics t w mode = (measure t w mode).Run.metrics

let sequential t w = run_at t w Mode.Baseline ~threads:1

let prefetch ?(progress = false) t cells =
  let pending =
    List.filter_map
      (fun (w, mode, threads) ->
        if Hashtbl.mem t.memo (memo_key w mode threads) then None
        else Some ((w, mode, threads), job_of t w mode ~threads))
      cells
  in
  if pending <> [] then begin
    let batch =
      Sweep.run_batch ?store:t.store ~jobs:t.jobs ~progress
        (List.map snd pending)
    in
    List.iter2
      (fun ((w, mode, threads), _) (_, outcome) ->
        match outcome with
        | Pool.Done r ->
          let key = memo_key w mode threads in
          if not (Hashtbl.mem t.memo key) then Hashtbl.add t.memo key r
        | Pool.Failed _ | Pool.Timed_out _ ->
          (* leave the cell empty: a later run_at retries it sequentially
             and surfaces the error in its natural context *)
          ())
      pending batch.Sweep.results
  end

let standard_cells t =
  List.concat_map
    (fun w ->
      (w, Mode.Baseline, 1)
      :: List.map (fun m -> (w, m, t.threads)) Mode.all)
    Registry.all

let speedup t w (s : Stats.t) =
  let seq = sequential t w in
  Stx_util.Stat.ratio seq.Stats.total_cycles s.Stats.total_cycles

let rel_performance t w mode =
  let base = run t w Mode.Baseline in
  let s = run t w mode in
  Stx_util.Stat.ratio base.Stats.total_cycles s.Stats.total_cycles

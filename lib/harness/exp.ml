open Stx_core
open Stx_sim
open Stx_workloads
open Stx_runner

type cell = Workload.t * Mode.t * int

type t = {
  seed : int;
  scale : float;
  threads : int;
  jobs : int;
  store : Store.t option;
  memo : (string * string * int, Stats.t) Hashtbl.t;
}

let create ?(seed = 1) ?(scale = 1.0) ?(threads = 16) ?(jobs = 1) ?store () =
  { seed; scale; threads; jobs; store; memo = Hashtbl.create 64 }

let seed t = t.seed
let scale t = t.scale
let threads t = t.threads
let jobs t = t.jobs
let store t = t.store

let mode_key m = Mode.to_string m

let job_of t (w : Workload.t) mode ~threads =
  Job.make ~workload:w.Workload.name ~mode ~threads ~seed:t.seed ~scale:t.scale

let memo_key (w : Workload.t) mode threads = (w.Workload.name, mode_key mode, threads)

let run_at t w mode ~threads =
  let key = memo_key w mode threads in
  match Hashtbl.find_opt t.memo key with
  | Some s -> s
  | None ->
    let job = job_of t w mode ~threads in
    let s =
      match Option.bind t.store (fun st -> Store.load st ~key:(Job.digest job)) with
      | Some s -> s
      | None ->
        let s = Sweep.run_job job in
        Option.iter (fun st -> Store.save st ~key:(Job.digest job) s) t.store;
        s
    in
    Hashtbl.add t.memo key s;
    s

let run t w mode = run_at t w mode ~threads:t.threads

let sequential t w = run_at t w Mode.Baseline ~threads:1

let prefetch ?(progress = false) t cells =
  let pending =
    List.filter_map
      (fun (w, mode, threads) ->
        if Hashtbl.mem t.memo (memo_key w mode threads) then None
        else Some ((w, mode, threads), job_of t w mode ~threads))
      cells
  in
  if pending <> [] then begin
    let batch =
      Sweep.run_batch ?store:t.store ~jobs:t.jobs ~progress
        (List.map snd pending)
    in
    List.iter2
      (fun ((w, mode, threads), _) (_, outcome) ->
        match outcome with
        | Pool.Done s ->
          let key = memo_key w mode threads in
          if not (Hashtbl.mem t.memo key) then Hashtbl.add t.memo key s
        | Pool.Failed _ | Pool.Timed_out _ ->
          (* leave the cell empty: a later run_at retries it sequentially
             and surfaces the error in its natural context *)
          ())
      pending batch.Sweep.results
  end

let standard_cells t =
  List.concat_map
    (fun w ->
      (w, Mode.Baseline, 1)
      :: List.map (fun m -> (w, m, t.threads)) Mode.all)
    Registry.all

let speedup t w (s : Stats.t) =
  let seq = sequential t w in
  Stx_util.Stat.ratio seq.Stats.total_cycles s.Stats.total_cycles

let rel_performance t w mode =
  let base = run t w Mode.Baseline in
  let s = run t w mode in
  Stx_util.Stat.ratio base.Stats.total_cycles s.Stats.total_cycles

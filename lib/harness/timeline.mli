open Stx_sim

(** ASCII execution timelines — the Figure 1 diagram, rendered from a
    {!Stx_trace.Trace} of a real run's event stream. Each thread is a
    lane; time flows left to right. Lane backgrounds: ['.'] idle /
    non-transactional, ['='] inside a speculative transaction, ['I']
    inside an irrevocable transaction, ['w'] waiting on an advisory lock,
    ['b'] backing off (or spinning for the global lock) after an abort.
    Markers: ['X'] abort, ['C'] commit, ['L'] advisory-lock acquisition,
    ['T'] advisory-lock wait timeout. *)

type t

val create : threads:int -> t
(** A fresh full-capture trace to render later. *)

val of_trace : Stx_trace.Trace.t -> t
(** Render an existing trace (recorded with {!Stx_trace.Trace.handler})
    instead of building a private one. *)

val handler : t -> time:int -> Machine.event -> unit
(** Pass as [Machine.run]'s [on_event]. *)

val render : ?width:int -> ?from_time:int -> ?until_time:int -> t -> string
(** Render the [from_time, until_time] window (defaults to the whole run)
    into [width] (default 100) columns. Events before [from_time] only
    advance the replayed lane state — they paint no marker — and events
    after [until_time] are ignored. *)

(** Machine-readable (tab-separated) dumps of the evaluation data, for
    plotting the figures outside this repository. One file per
    table/figure, written into a directory. *)

val write_all : Exp.t -> dir:string -> string list
(** Writes [table1.tsv], [table4.tsv], [fig7.tsv] and [fig8.tsv]; returns
    the paths written. Creates [dir] if needed. *)

val cells : Exp.t -> Exp.cell list
(** Every memo cell {!write_all} reads — prefetch these first to produce
    the TSVs with the domain pool. *)

open Stx_core
open Stx_sim
open Stx_workloads

(** Shared experiment context: one place that runs (benchmark, mode,
    threads) combinations and memoizes the results, so Table 1, Table 4,
    Figure 7 and Figure 8 all describe the same runs — as they do in the
    paper.

    The memo table can be backed by an on-disk {!Stx_runner.Store} (so
    re-running the reproduction is incremental across invocations) and
    filled wholesale by {!prefetch}, which hands all still-missing cells
    to a {!Stx_runner.Pool} of domains. Because every simulation is
    deterministic in its job spec, neither the store nor the pool changes
    any result: a cold sequential run, a parallel run, and a warm-cache
    run produce identical statistics. *)

type t

type cell = Workload.t * Mode.t * int
(** One memo-table coordinate: benchmark, mode, simulated thread count. *)

val create :
  ?seed:int ->
  ?scale:float ->
  ?threads:int ->
  ?jobs:int ->
  ?policy:Stx_policy.t ->
  ?store:Stx_runner.Store.t ->
  unit ->
  t
(** [threads] defaults to 16 (the paper's machine); [scale] to 1.0.
    [jobs] (default 1) is the domain-pool width used by {!prefetch};
    [policy] (default {!Stx_policy.default}) is the HTM policy bundle
    every cell of the context runs under; [store] (default none)
    persists results across invocations. *)

val seed : t -> int
val scale : t -> float
val threads : t -> int
val jobs : t -> int
val policy : t -> Stx_policy.t
val store : t -> Stx_runner.Store.t option

val run : t -> Workload.t -> Mode.t -> Stats.t
(** Run (memoized) at the context's thread count. Baseline and AddrOnly
    run the uninstrumented binary; the staggered modes run the
    ALP-instrumented one, as in §6.2. *)

val run_at : t -> Workload.t -> Mode.t -> threads:int -> Stats.t
(** As {!run} at an explicit thread count (memoized separately). Checks
    the in-memory memo, then the store, then simulates (and persists). *)

val measure : t -> Workload.t -> Mode.t -> Stx_metrics.Run.t
(** The same memoized cell as {!run}, with its metrics registry — the
    profile and bench reports read histograms and phase counters from
    here, so they always describe the very runs the tables were built
    from. *)

val measure_at : t -> Workload.t -> Mode.t -> threads:int -> Stx_metrics.Run.t

val metrics : t -> Workload.t -> Mode.t -> Stx_metrics.Registry.t
(** [measure]'s registry alone. *)

val sequential : t -> Workload.t -> Stats.t
(** The 1-thread uninstrumented reference used for speedups. *)

val prefetch : ?progress:bool -> t -> cell list -> unit
(** Fill the memo for every listed cell that is still missing, using the
    context's store and [jobs] domains. A cell whose job fails or times
    out is simply left unfilled — the next {!run_at} retries it
    sequentially and raises in its natural context. [progress] (default
    off) prints per-job completion lines on stderr. *)

val standard_cells : t -> cell list
(** The full evaluation matrix: every benchmark × every mode at the
    context's thread count, plus each benchmark's 1-thread baseline
    reference — a superset of what Tables 1/4 and Figures 7/8 need. *)

val speedup : t -> Workload.t -> Stats.t -> float
(** Makespan of the sequential reference over this run's makespan. *)

val rel_performance : t -> Workload.t -> Mode.t -> float
(** Performance normalized to the 16-thread baseline HTM (Figure 7's
    y-axis): baseline cycles / mode cycles. *)

open Stx_workloads

(** The evaluation reports: one function per table/figure of the paper,
    each rendering an ASCII reproduction from a shared {!Exp} context. *)

val table1 : Exp.t -> string
(** Table 1: HTM contention in representative benchmarks — speedup S, %
    of txns forced irrevocable, wasted/useful cycle ratio, contention
    source, locality of contention addresses (LA) and PCs (LP). *)

val table2 : unit -> string
(** Table 2: the simulated machine configuration. *)

val table3 : Exp.t -> string
(** Table 3: static and dynamic instrumentation statistics and anchor
    identification accuracy, plus the §6.1 naive-instrumentation
    comparison. *)

val table4 : Exp.t -> string
(** Table 4: benchmark characteristics. *)

val granularity : Exp.t -> string
(** Whole-transaction scheduling (Tx_sched, the Proactive-Transaction-
    Scheduling comparison of §7) vs staggered partial serialization —
    Result 2's "more parallelism" claim. *)

val fig1 : unit -> string
(** Figure 1: the staggering schematic, reconstructed as ASCII timelines
    from real baseline and staggered runs of a mid-transaction-conflict
    scenario. *)

val fig7 : Exp.t -> string
(** Figure 7: performance at 16 threads normalized to the baseline HTM for
    AddrOnly / Staggered+SW / Staggered, with the harmonic-mean summary. *)

val fig7_repeated :
  ?seeds:int list ->
  ?jobs:int ->
  ?store:Stx_runner.Store.t ->
  scale:float ->
  threads:int ->
  unit ->
  string
(** Figure 7 averaged over several seeds, with the spread — the paper's
    repeat-5-times methodology. [jobs]/[store] parallelize and persist
    the per-seed runs as in {!Exp.create}. *)

val fig8 : Exp.t -> string
(** Figure 8: (a) aborts per commit and (b) wasted/useful cycles, baseline
    vs Staggered. *)

val anchor_tables : Workload.t -> string
(** Figure 3-style dump of a benchmark's unified anchor tables. *)

val hotspots : Exp.t -> Workload.t -> string
(** The most frequent conflicting lines and PC tags of a baseline run —
    the raw signal behind Table 1's LA/LP columns and the policy's
    decisions. *)

val scaling : Exp.t -> Workload.t -> string
(** Thread-count sweep (1..16) for baseline and Staggered — the curves
    behind the S column. *)

val profile : Exp.t -> Workload.t -> string
(** Per-atomic-block phase profile of one benchmark under every runtime
    mode: committed transaction cycles split at the first advisory-lock
    acquire into speculative prefix, lock wait and serialized suffix
    (plus irrevocable, wasted and backoff cycles), with the latency and
    retry distributions beneath. The paper's core claim made visible:
    the baseline serializes nothing (no suffix), staggered modes
    serialize only the conflicting portion. *)

val profile_tsv : Exp.t -> Workload.t -> string
(** The same phase-cycle cells as {!profile}, machine-readable: a
    header row then one tab-separated row per (mode, atomic block),
    free-form cells escaped with {!Stx_analysis.Diag.tsv_escape} so the
    file shares the lint TSV's conventions. *)

(** {2 Prefetch cells}

    The memo cells each report reads, for handing to {!Exp.prefetch}
    (and thus the domain pool) before rendering. Prefetching is purely a
    performance hint: a report renders identically without it, running
    each missing cell on demand. *)

val table1_cells : Exp.t -> Exp.cell list
val table3_cells : Exp.t -> Exp.cell list
val table4_cells : Exp.t -> Exp.cell list
val fig7_cells : Exp.t -> Exp.cell list
val fig8_cells : Exp.t -> Exp.cell list
val granularity_cells : Exp.t -> Exp.cell list
val scaling_cells : Exp.t -> Workload.t -> Exp.cell list
val hotspot_cells : Exp.t -> Workload.t -> Exp.cell list
val profile_cells : Exp.t -> Workload.t -> Exp.cell list

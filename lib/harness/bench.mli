open Stx_workloads

(** The machine-readable bench pipeline: run the Figure 7 suite (every
    benchmark under every runtime mode), distill each cell into a small
    set of headline numbers, write them as a schema-versioned
    [BENCH_stx.json], and gate later runs against an earlier snapshot.

    The simulator is deterministic, so two snapshots taken at the same
    (seed, scale, threads) differ only when the code changed — which is
    exactly what {!compare} is for: CI keeps a committed baseline and
    fails the build when throughput moves past a threshold. *)

type entry = {
  workload : string;
  mode : string;  (** [Mode.to_string] *)
  throughput : float;  (** commits per million simulated cycles *)
  abort_rate : float;  (** aborts / (commits + aborts) *)
  p99_latency : int;  (** p99 committed-attempt latency, cycles *)
  prefix_share : float;
      (** speculative-prefix cycles / committed tx cycles *)
  suffix_share : float;
      (** serialized-suffix cycles / committed tx cycles *)
}

type sim_entry = {
  sim_workload : string;
  sim_events : int;  (** simulated instructions executed by the timed run *)
  sim_events_per_sec : float;  (** wall-clock simulation rate *)
  sim_minor_words_per_event : float;
      (** [Gc.minor_words] delta of the timed run / events; persisted to
          JSON as [minor_words_per_1k_events] (this field × 1000) *)
}

type t = {
  schema_version : int;
  seed : int;
  scale : float;
  threads : int;
  entries : entry list;  (** sorted by (workload, mode) *)
  sims : sim_entry list;
      (** simulator-core throughput series, measured at the fixed
          ({!sim_cores}, {!sim_scale}, seed 1) point *)
}

val schema_version : int
(** Stamped into the snapshot ({b 2}); {!read} rejects other versions.
    v2 added the [sims] series. *)

val sim_cores : int
(** Core count the sim-throughput series is measured at (16). *)

val sim_scale : float
(** Workload scale the sim-throughput series is measured at (0.2). *)

val measure_sim :
  ?cores:int -> ?scale:float -> ?seed:int -> Workload.t -> sim_entry
(** Wall-clock throughput of the simulator core on one workload (Baseline
    mode, default 16 cores, scale 0.2): a warmup run, then a timed run
    bracketed by [Gc.minor_words]. Never memoised. *)

val sim_suite :
  ?cores:int -> ?scale:float -> ?seed:int -> unit -> sim_entry list
(** {!measure_sim} over every registered workload. *)

val render_sim : ?cores:int -> sim_entry list -> string

val suite_cells : Exp.t -> Exp.cell list
(** What to [Exp.prefetch] before {!suite}: the full Figure 7 matrix. *)

val suite : Exp.t -> t
(** Run (or fetch from the context's memo/store) every benchmark under
    every mode and distill the entries. *)

val to_json_string : t -> string
val of_json_string : string -> (t, string) result

val write : t -> file:string -> unit
val read : file:string -> (t, string) result

val render : t -> string
(** The snapshot as a table, for the terminal. *)

(** {2 Regression gating} *)

type verdict =
  | Improved
  | Neutral
  | Regressed
  | Added  (** only in the new snapshot *)
  | Removed  (** only in the baseline *)

type comparison = {
  c_workload : string;
  c_mode : string;
  c_old : entry option;
  c_new : entry option;
  ratio : float;  (** new/old throughput; [nan] unless both present *)
  verdict : verdict;
}

val compare_runs : ?threshold:float -> baseline:t -> t -> comparison list
(** Match entries by (workload, mode) and judge the throughput ratio:
    below [1 - threshold] is [Regressed], above [1 + threshold] is
    [Improved], else [Neutral]. [threshold] defaults to 0.2 (±20%).
    Raises [Invalid_argument] on a threshold outside (0, 1). *)

val regressions : comparison list -> comparison list
(** The [Regressed] subset — non-empty means the gate should fail. *)

val render_compare : comparison list -> string
(** One row per cell with both throughputs, the ratio and the verdict,
    plus a closing summary line. *)

(** {2 Sim-series gating} *)

type sim_comparison = {
  s_workload : string;
  s_old : sim_entry option;
  s_new : sim_entry option;
  s_speed_ratio : float;  (** new/old events per second; [nan] unless both *)
  s_alloc_ratio : float;
      (** new/old minor words per event; [nan] unless both, [1.] when the
          baseline allocated nothing *)
  s_verdict : verdict;
}

val compare_sims : ?threshold:float -> baseline:t -> t -> sim_comparison list
(** Match sim entries by workload. A cell regresses when events/sec fell
    below [1 - threshold] of the baseline {b or} the allocation rate rose
    above [1 + threshold] of it; it improves on the mirrored condition.
    The speed leg is wall-clock and so only meaningful against a baseline
    taken on comparable hardware; the allocation leg is deterministic. *)

val sim_regressions : sim_comparison list -> sim_comparison list

val render_compare_sims : sim_comparison list -> string

val minor_words_budget : float
(** Absolute steady-state allocation bound (64 minor-heap words per
    simulated event) that every sim cell must stay under regardless of
    what the baseline recorded. *)

val alloc_violations : t -> sim_entry list
(** Sim entries at or over {!minor_words_budget} — non-empty means the
    bench driver should fail the run. *)

val workload_names : Workload.t list -> string list
(** Names in registry order (a convenience for drivers). *)

open Stx_workloads

(** The machine-readable bench pipeline: run the Figure 7 suite (every
    benchmark under every runtime mode), distill each cell into a small
    set of headline numbers, write them as a schema-versioned
    [BENCH_stx.json], and gate later runs against an earlier snapshot.

    The simulator is deterministic, so two snapshots taken at the same
    (seed, scale, threads) differ only when the code changed — which is
    exactly what {!compare} is for: CI keeps a committed baseline and
    fails the build when throughput moves past a threshold. *)

type entry = {
  workload : string;
  mode : string;  (** [Mode.to_string] *)
  throughput : float;  (** commits per million simulated cycles *)
  abort_rate : float;  (** aborts / (commits + aborts) *)
  p99_latency : int;  (** p99 committed-attempt latency, cycles *)
  prefix_share : float;
      (** speculative-prefix cycles / committed tx cycles *)
  suffix_share : float;
      (** serialized-suffix cycles / committed tx cycles *)
}

type t = {
  schema_version : int;
  seed : int;
  scale : float;
  threads : int;
  entries : entry list;  (** sorted by (workload, mode) *)
}

val schema_version : int
(** Stamped into the snapshot ({b 1}); {!read} rejects other versions. *)

val suite_cells : Exp.t -> Exp.cell list
(** What to [Exp.prefetch] before {!suite}: the full Figure 7 matrix. *)

val suite : Exp.t -> t
(** Run (or fetch from the context's memo/store) every benchmark under
    every mode and distill the entries. *)

val to_json_string : t -> string
val of_json_string : string -> (t, string) result

val write : t -> file:string -> unit
val read : file:string -> (t, string) result

val render : t -> string
(** The snapshot as a table, for the terminal. *)

(** {2 Regression gating} *)

type verdict =
  | Improved
  | Neutral
  | Regressed
  | Added  (** only in the new snapshot *)
  | Removed  (** only in the baseline *)

type comparison = {
  c_workload : string;
  c_mode : string;
  c_old : entry option;
  c_new : entry option;
  ratio : float;  (** new/old throughput; [nan] unless both present *)
  verdict : verdict;
}

val compare_runs : ?threshold:float -> baseline:t -> t -> comparison list
(** Match entries by (workload, mode) and judge the throughput ratio:
    below [1 - threshold] is [Regressed], above [1 + threshold] is
    [Improved], else [Neutral]. [threshold] defaults to 0.2 (±20%).
    Raises [Invalid_argument] on a threshold outside (0, 1). *)

val regressions : comparison list -> comparison list
(** The [Regressed] subset — non-empty means the gate should fail. *)

val render_compare : comparison list -> string
(** One row per cell with both throughputs, the ratio and the verdict,
    plus a closing summary line. *)

val workload_names : Workload.t list -> string list
(** Names in registry order (a convenience for drivers). *)

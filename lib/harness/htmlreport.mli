open Stx_core
open Stx_sim

(** The [stx_repro report] renderer: one run distilled into a single
    self-contained HTML file.

    The document inlines all of its CSS and draws every chart as
    hand-rolled SVG — sparklines over the telemetry windows, a per-core
    occupancy heat strip, stacked phase-profile bars — so it references
    no external asset, script, or font and can be archived, diffed, or
    attached to a CI run as one file. Rendering is a pure function of
    the input: the same run produces byte-identical HTML, which is what
    lets the artifact live in the content-addressed {!Stx_runner.Store}
    under a digest of the run parameters. *)

type input = {
  workload : string;
  mode : Mode.t;
  seed : int;
  scale : float;
  threads : int;
  policy : Stx_policy.t;
  series : Stx_telemetry.Series.t;
  episodes : Stx_telemetry.Episodes.t list;
  stats : Stats.t;
  registry : Stx_metrics.Registry.t;
      (** the run's metrics; the per-atomic-block phase profile is read
          from here *)
  attribution : Stx_trace.Trace.attribution;
      (** trace-derived conflict attribution for the hot-spot tables *)
  ab_name : int -> string;
      (** atomic-block id -> source name, for profile row labels *)
}

val render : input -> string
(** The complete HTML document. Deterministic: equal inputs produce
    byte-identical output (no timestamps, no randomness, no iteration
    over unordered containers). *)

open Stx_util
open Stx_core
open Stx_sim
open Stx_workloads
module J = Stx_metrics.Json
module Mreg = Stx_metrics.Registry
module Hist = Stx_metrics.Hist
module Collect = Stx_metrics.Collect

type entry = {
  workload : string;
  mode : string;
  throughput : float;
  abort_rate : float;
  p99_latency : int;
  prefix_share : float;
  suffix_share : float;
}

type sim_entry = {
  sim_workload : string;
  sim_events : int;
  sim_events_per_sec : float;
  sim_minor_words_per_event : float;
}

type t = {
  schema_version : int;
  seed : int;
  scale : float;
  threads : int;
  entries : entry list;
  sims : sim_entry list;
}

(* v2 added the simulator-core throughput series ([sims]). *)
let schema_version = 2

let suite_modes =
  [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]

let suite_cells ctx =
  List.concat_map
    (fun w -> List.map (fun m -> (w, m, Exp.threads ctx)) suite_modes)
    Registry.all

let entry_of_run ~workload ~mode (r : Stx_metrics.Run.t) =
  let s = r.Stx_metrics.Run.stats in
  let reg = r.Stx_metrics.Run.metrics in
  let throughput =
    1_000_000. *. Stat.ratio s.Stats.commits (max 1 s.Stats.total_cycles)
  in
  let attempts = s.Stats.commits + s.Stats.aborts in
  let abort_rate = Stat.ratio s.Stats.aborts (max 1 attempts) in
  let p99_latency =
    match
      Mreg.histogram reg "stx_tx_latency_cycles" [ ("outcome", "commit") ]
    with
    | Some h -> Hist.p99 h
    | None -> 0
  in
  let phase p = Collect.phase_total reg p in
  let prefix = phase Collect.Prefix in
  let suffix = phase Collect.Suffix in
  let committed =
    prefix + phase Collect.Lock_wait + suffix + phase Collect.Irrevocable
  in
  {
    workload;
    mode = Mode.to_string mode;
    throughput;
    abort_rate;
    p99_latency;
    prefix_share = Stat.ratio prefix (max 1 committed);
    suffix_share = Stat.ratio suffix (max 1 committed);
  }

(* ------------------------------------------------------------------ *)
(* simulator-core throughput: wall-clock events/sec and GC pressure.

   One "event" is one executed simulated instruction ([Stats.insts]) — the
   unit every workload shares regardless of how its cycles are spent. The
   measurement deliberately bypasses the result store: the point is the
   wall-clock cost of the simulator itself, so memoisation would make it a
   no-op. A warmup run precedes the timed run so the timed one sees a warm
   code path; the minor-allocation rate divides the [Gc.minor_words] delta
   of the timed run by its event count, which amortises the machine's
   one-time pool construction over the whole run. *)

let sim_cores = 16
let sim_scale = 0.2

let measure_sim ?(cores = sim_cores) ?(scale = sim_scale) ?(seed = 1)
    (w : Workload.t) =
  (* compile the workload once, outside the measured window: the gate is
     about the simulator's steady state, not the compiler's allocation *)
  let spec = Workload.spec ~instrument:false ~scale w in
  let cfg = Stx_machine.Config.with_cores cores Stx_machine.Config.default in
  let run () = Machine.run ~seed ~cfg ~mode:Mode.Baseline spec in
  ignore (run ());
  (* short workloads finish in a few milliseconds, where a single timed
     run is scheduler noise: repeat until enough wall time accumulates
     and report the best rep.  The allocation figure comes from the
     first rep alone — per-rep allocation is deterministic, and the
     delta includes machine construction, amortised over the run *)
  Gc.full_major ();
  let min_elapsed = 0.2 in
  let rec reps total_dt best_dt first_dm events =
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let stats = run () in
    let dt = Unix.gettimeofday () -. t0 in
    let dm = Gc.minor_words () -. m0 in
    let total_dt = total_dt +. dt in
    let best_dt = if best_dt <= 0. || dt < best_dt then dt else best_dt in
    let first_dm = if first_dm < 0. then dm else first_dm in
    if total_dt < min_elapsed then reps total_dt best_dt first_dm events
    else (best_dt, first_dm, stats.Stats.insts)
  in
  let best_dt, dm, events = reps 0. 0. (-1.) 0 in
  {
    sim_workload = w.Workload.name;
    sim_events = events;
    sim_events_per_sec =
      float_of_int events /. (if best_dt <= 0. then 1e-9 else best_dt);
    sim_minor_words_per_event = dm /. float_of_int (max 1 events);
  }

let sim_suite ?cores ?scale ?seed () =
  List.map (fun w -> measure_sim ?cores ?scale ?seed w) Registry.all

let render_sim ?(cores = sim_cores) entries =
  let tbl =
    Table.create [ "Benchmark"; "events"; "events/sec"; "minor words/event" ]
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        [
          e.sim_workload;
          string_of_int e.sim_events;
          Table.fmt_f ~dec:0 e.sim_events_per_sec;
          Table.fmt_f ~dec:2 e.sim_minor_words_per_event;
        ])
    entries;
  Printf.sprintf
    "Simulator core throughput (%d cores, Baseline mode): wall-clock\n\
     simulated instructions per second and minor-heap words allocated per\n\
     instruction.\n"
    cores
  ^ Table.render tbl

let suite ctx =
  let entries =
    List.concat_map
      (fun (w : Workload.t) ->
        List.map
          (fun m ->
            entry_of_run ~workload:w.Workload.name ~mode:m
              (Exp.measure ctx w m))
          suite_modes)
      Registry.all
    |> List.sort (fun a b ->
           compare (a.workload, a.mode) (b.workload, b.mode))
  in
  {
    schema_version;
    seed = Exp.seed ctx;
    scale = Exp.scale ctx;
    threads = Exp.threads ctx;
    entries;
    (* the sim series is measured at its own fixed point (16 cores,
       scale 0.2, seed 1) regardless of the context: wall-clock rates
       only compare within one configuration, and pinning it keeps the
       committed baseline comparable across ctx flags *)
    sims = sim_suite ();
  }

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let entry_to_json e =
  J.Obj
    [
      ("workload", J.Str e.workload);
      ("mode", J.Str e.mode);
      ("throughput", J.Float e.throughput);
      ("abort_rate", J.Float e.abort_rate);
      ("p99_latency_cycles", J.Int e.p99_latency);
      ("prefix_share", J.Float e.prefix_share);
      ("suffix_share", J.Float e.suffix_share);
    ]

(* the persisted allocation series is per 1000 events: per-event figures
   for a zero-allocation core are fractions like 0.004, which round badly
   in fixed-precision renderings of the JSON *)
let sim_to_json e =
  J.Obj
    [
      ("workload", J.Str e.sim_workload);
      ("events", J.Int e.sim_events);
      ("sim_events_per_sec", J.Float e.sim_events_per_sec);
      ("minor_words_per_1k_events", J.Float (1000. *. e.sim_minor_words_per_event));
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.Str "stx-bench");
      ("version", J.Int t.schema_version);
      ("seed", J.Int t.seed);
      ("scale", J.Float t.scale);
      ("threads", J.Int t.threads);
      ("entries", J.List (List.map entry_to_json t.entries));
      ("sims", J.List (List.map sim_to_json t.sims));
    ]

let to_json_string t = J.to_string (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what o = match o with Some v -> Ok v | None -> Error ("bench snapshot: missing or ill-typed " ^ what)

let entry_of_json j =
  let* workload = req "workload" (Option.bind (J.member "workload" j) J.as_string) in
  let* mode = req "mode" (Option.bind (J.member "mode" j) J.as_string) in
  let* throughput = req "throughput" (Option.bind (J.member "throughput" j) J.as_float) in
  let* abort_rate = req "abort_rate" (Option.bind (J.member "abort_rate" j) J.as_float) in
  let* p99_latency =
    req "p99_latency_cycles" (Option.bind (J.member "p99_latency_cycles" j) J.as_int)
  in
  let* prefix_share =
    req "prefix_share" (Option.bind (J.member "prefix_share" j) J.as_float)
  in
  let* suffix_share =
    req "suffix_share" (Option.bind (J.member "suffix_share" j) J.as_float)
  in
  Ok { workload; mode; throughput; abort_rate; p99_latency; prefix_share; suffix_share }

let sim_of_json j =
  let* sim_workload = req "workload" (Option.bind (J.member "workload" j) J.as_string) in
  let* sim_events = req "events" (Option.bind (J.member "events" j) J.as_int) in
  let* sim_events_per_sec =
    req "sim_events_per_sec"
      (Option.bind (J.member "sim_events_per_sec" j) J.as_float)
  in
  let* per_1k =
    req "minor_words_per_1k_events"
      (Option.bind (J.member "minor_words_per_1k_events" j) J.as_float)
  in
  Ok
    {
      sim_workload;
      sim_events;
      sim_events_per_sec;
      sim_minor_words_per_event = per_1k /. 1000.;
    }

let of_json j =
  let* schema = req "schema" (Option.bind (J.member "schema" j) J.as_string) in
  let* () = if schema = "stx-bench" then Ok () else Error ("bench snapshot: schema is " ^ schema ^ ", wanted stx-bench") in
  let* version = req "version" (Option.bind (J.member "version" j) J.as_int) in
  let* () =
    if version = schema_version then Ok ()
    else
      Error
        (Printf.sprintf "bench snapshot: version %d, this build reads %d"
           version schema_version)
  in
  let* seed = req "seed" (Option.bind (J.member "seed" j) J.as_int) in
  let* scale = req "scale" (Option.bind (J.member "scale" j) J.as_float) in
  let* threads = req "threads" (Option.bind (J.member "threads" j) J.as_int) in
  let* entries = req "entries" (Option.bind (J.member "entries" j) J.as_list) in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = entry_of_json e in
        Ok (e :: acc))
      (Ok []) entries
  in
  let* sims = req "sims" (Option.bind (J.member "sims" j) J.as_list) in
  let* sims =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = sim_of_json e in
        Ok (e :: acc))
      (Ok []) sims
  in
  Ok
    {
      schema_version = version;
      seed;
      scale;
      threads;
      entries = List.rev entries;
      sims = List.rev sims;
    }

let of_json_string s =
  match J.parse s with Ok j -> of_json j | Error e -> Error ("bench snapshot: " ^ e)

let write t ~file =
  let oc = open_out file in
  output_string oc (to_json_string t);
  output_char oc '\n';
  close_out oc

let read ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | s -> of_json_string s
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* rendering *)

let render t =
  let tbl =
    Table.create
      [
        "Benchmark"; "Mode"; "thr (c/Mcyc)"; "abort rate"; "p99 lat";
        "prefix%"; "suffix%";
      ]
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        [
          e.workload;
          e.mode;
          Table.fmt_f ~dec:1 e.throughput;
          Table.fmt_pct ~dec:1 (100. *. e.abort_rate);
          string_of_int e.p99_latency;
          Table.fmt_pct ~dec:1 (100. *. e.prefix_share);
          Table.fmt_pct ~dec:1 (100. *. e.suffix_share);
        ])
    t.entries;
  Printf.sprintf
    "Bench suite (seed %d, scale %g, %d threads): throughput in commits per\n\
     million simulated cycles; prefix/suffix as shares of committed tx cycles.\n"
    t.seed t.scale t.threads
  ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* regression gating *)

type verdict = Improved | Neutral | Regressed | Added | Removed

type comparison = {
  c_workload : string;
  c_mode : string;
  c_old : entry option;
  c_new : entry option;
  ratio : float;
  verdict : verdict;
}

let verdict_label = function
  | Improved -> "improved"
  | Neutral -> "ok"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

let compare_runs ?(threshold = 0.2) ~baseline fresh =
  if not (threshold > 0. && threshold < 1.) then
    invalid_arg "Bench.compare_runs: threshold must be in (0, 1)";
  let key (e : entry) = (e.workload, e.mode) in
  let index entries =
    let h = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace h (key e) e) entries;
    h
  in
  let old_by = index baseline.entries and new_by = index fresh.entries in
  let keys =
    List.sort_uniq compare
      (List.map key baseline.entries @ List.map key fresh.entries)
  in
  List.map
    (fun ((w, m) as k) ->
      let c_old = Hashtbl.find_opt old_by k in
      let c_new = Hashtbl.find_opt new_by k in
      let ratio, verdict =
        match (c_old, c_new) with
        | None, Some _ -> (nan, Added)
        | Some _, None -> (nan, Removed)
        | None, None -> assert false
        | Some o, Some n ->
          if o.throughput = 0. && n.throughput = 0. then (1., Neutral)
          else
            let r = n.throughput /. o.throughput in
            if r < 1. -. threshold then (r, Regressed)
            else if r > 1. +. threshold then (r, Improved)
            else (r, Neutral)
      in
      { c_workload = w; c_mode = m; c_old; c_new; ratio; verdict })
    keys

let regressions = List.filter (fun c -> c.verdict = Regressed)

let render_compare comparisons =
  let tbl =
    Table.create
      [ "Benchmark"; "Mode"; "baseline thr"; "new thr"; "ratio"; "verdict" ]
  in
  let thr = function Some e -> Table.fmt_f ~dec:1 e.throughput | None -> "-" in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.c_workload;
          c.c_mode;
          thr c.c_old;
          thr c.c_new;
          (if Float.is_nan c.ratio then "-" else Table.fmt_f ~dec:2 c.ratio);
          verdict_label c.verdict;
        ])
    comparisons;
  let count v = List.length (List.filter (fun c -> c.verdict = v) comparisons) in
  Table.render tbl
  ^ Printf.sprintf
      "%d cells: %d ok, %d improved, %d regressed, %d added, %d removed\n"
      (List.length comparisons) (count Neutral) (count Improved)
      (count Regressed) (count Added) (count Removed)

(* ------------------------------------------------------------------ *)
(* sim-series gating: wall-clock events/sec (machine-relative) and the
   allocation rate (deterministic), judged with the same ±threshold rule
   as throughput.  Allocation regresses *upward*: more minor words per
   event than the baseline allows is the failure, and an absolute budget
   backstops the relative gate so a baseline taken on an allocation-heavy
   build can never grandfather the regression in. *)

type sim_comparison = {
  s_workload : string;
  s_old : sim_entry option;
  s_new : sim_entry option;
  s_speed_ratio : float;
  s_alloc_ratio : float;
  s_verdict : verdict;
}

let compare_sims ?(threshold = 0.2) ~baseline fresh =
  if not (threshold > 0. && threshold < 1.) then
    invalid_arg "Bench.compare_sims: threshold must be in (0, 1)";
  let index sims =
    let h = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace h e.sim_workload e) sims;
    h
  in
  let old_by = index baseline.sims and new_by = index fresh.sims in
  let names =
    List.sort_uniq compare
      (List.map (fun e -> e.sim_workload) baseline.sims
      @ List.map (fun e -> e.sim_workload) fresh.sims)
  in
  List.map
    (fun w ->
      let s_old = Hashtbl.find_opt old_by w in
      let s_new = Hashtbl.find_opt new_by w in
      let speed, alloc, verdict =
        match (s_old, s_new) with
        | None, Some _ -> (nan, nan, Added)
        | Some _, None -> (nan, nan, Removed)
        | None, None -> assert false
        | Some o, Some n ->
          let speed =
            if o.sim_events_per_sec = 0. then 1.
            else n.sim_events_per_sec /. o.sim_events_per_sec
          in
          (* a zero-allocation baseline cell leaves nothing to be relative
             to; the absolute budget still applies *)
          let alloc =
            if o.sim_minor_words_per_event <= 0. then 1.
            else n.sim_minor_words_per_event /. o.sim_minor_words_per_event
          in
          let verdict =
            if speed < 1. -. threshold || alloc > 1. +. threshold then Regressed
            else if speed > 1. +. threshold || alloc < 1. -. threshold then
              Improved
            else Neutral
          in
          (speed, alloc, verdict)
      in
      {
        s_workload = w;
        s_old;
        s_new;
        s_speed_ratio = speed;
        s_alloc_ratio = alloc;
        s_verdict = verdict;
      })
    names

let sim_regressions = List.filter (fun c -> c.s_verdict = Regressed)

let render_compare_sims comparisons =
  let tbl =
    Table.create
      [
        "Benchmark"; "base ev/s"; "new ev/s"; "speed"; "base w/ev"; "new w/ev";
        "alloc"; "verdict";
      ]
  in
  let evs = function Some e -> Table.fmt_f ~dec:0 e.sim_events_per_sec | None -> "-" in
  let wpe = function
    | Some e -> Table.fmt_f ~dec:3 e.sim_minor_words_per_event
    | None -> "-"
  in
  let ratio r = if Float.is_nan r then "-" else Table.fmt_f ~dec:2 r in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.s_workload;
          evs c.s_old;
          evs c.s_new;
          ratio c.s_speed_ratio;
          wpe c.s_old;
          wpe c.s_new;
          ratio c.s_alloc_ratio;
          verdict_label c.s_verdict;
        ])
    comparisons;
  let count v =
    List.length (List.filter (fun c -> c.s_verdict = v) comparisons)
  in
  Table.render tbl
  ^ Printf.sprintf
      "%d sim cells: %d ok, %d improved, %d regressed, %d added, %d removed\n"
      (List.length comparisons) (count Neutral) (count Improved)
      (count Regressed) (count Added) (count Removed)

(* The tentpole's absolute steady-state bound: fewer than 64 minor-heap
   words per simulated event, with machine construction amortised in. *)
let minor_words_budget = 64.

let alloc_violations t =
  List.filter (fun e -> e.sim_minor_words_per_event >= minor_words_budget) t.sims

let workload_names ws = List.map (fun (w : Workload.t) -> w.Workload.name) ws

open Stx_util
open Stx_core
open Stx_sim
open Stx_workloads
module J = Stx_metrics.Json
module Mreg = Stx_metrics.Registry
module Hist = Stx_metrics.Hist
module Collect = Stx_metrics.Collect

type entry = {
  workload : string;
  mode : string;
  throughput : float;
  abort_rate : float;
  p99_latency : int;
  prefix_share : float;
  suffix_share : float;
}

type t = {
  schema_version : int;
  seed : int;
  scale : float;
  threads : int;
  entries : entry list;
}

let schema_version = 1

let suite_modes =
  [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]

let suite_cells ctx =
  List.concat_map
    (fun w -> List.map (fun m -> (w, m, Exp.threads ctx)) suite_modes)
    Registry.all

let entry_of_run ~workload ~mode (r : Stx_metrics.Run.t) =
  let s = r.Stx_metrics.Run.stats in
  let reg = r.Stx_metrics.Run.metrics in
  let throughput =
    1_000_000. *. Stat.ratio s.Stats.commits (max 1 s.Stats.total_cycles)
  in
  let attempts = s.Stats.commits + s.Stats.aborts in
  let abort_rate = Stat.ratio s.Stats.aborts (max 1 attempts) in
  let p99_latency =
    match
      Mreg.histogram reg "stx_tx_latency_cycles" [ ("outcome", "commit") ]
    with
    | Some h -> Hist.p99 h
    | None -> 0
  in
  let phase p = Collect.phase_total reg p in
  let prefix = phase Collect.Prefix in
  let suffix = phase Collect.Suffix in
  let committed =
    prefix + phase Collect.Lock_wait + suffix + phase Collect.Irrevocable
  in
  {
    workload;
    mode = Mode.to_string mode;
    throughput;
    abort_rate;
    p99_latency;
    prefix_share = Stat.ratio prefix (max 1 committed);
    suffix_share = Stat.ratio suffix (max 1 committed);
  }

let suite ctx =
  let entries =
    List.concat_map
      (fun (w : Workload.t) ->
        List.map
          (fun m ->
            entry_of_run ~workload:w.Workload.name ~mode:m
              (Exp.measure ctx w m))
          suite_modes)
      Registry.all
    |> List.sort (fun a b ->
           compare (a.workload, a.mode) (b.workload, b.mode))
  in
  {
    schema_version;
    seed = Exp.seed ctx;
    scale = Exp.scale ctx;
    threads = Exp.threads ctx;
    entries;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let entry_to_json e =
  J.Obj
    [
      ("workload", J.Str e.workload);
      ("mode", J.Str e.mode);
      ("throughput", J.Float e.throughput);
      ("abort_rate", J.Float e.abort_rate);
      ("p99_latency_cycles", J.Int e.p99_latency);
      ("prefix_share", J.Float e.prefix_share);
      ("suffix_share", J.Float e.suffix_share);
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.Str "stx-bench");
      ("version", J.Int t.schema_version);
      ("seed", J.Int t.seed);
      ("scale", J.Float t.scale);
      ("threads", J.Int t.threads);
      ("entries", J.List (List.map entry_to_json t.entries));
    ]

let to_json_string t = J.to_string (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what o = match o with Some v -> Ok v | None -> Error ("bench snapshot: missing or ill-typed " ^ what)

let entry_of_json j =
  let* workload = req "workload" (Option.bind (J.member "workload" j) J.as_string) in
  let* mode = req "mode" (Option.bind (J.member "mode" j) J.as_string) in
  let* throughput = req "throughput" (Option.bind (J.member "throughput" j) J.as_float) in
  let* abort_rate = req "abort_rate" (Option.bind (J.member "abort_rate" j) J.as_float) in
  let* p99_latency =
    req "p99_latency_cycles" (Option.bind (J.member "p99_latency_cycles" j) J.as_int)
  in
  let* prefix_share =
    req "prefix_share" (Option.bind (J.member "prefix_share" j) J.as_float)
  in
  let* suffix_share =
    req "suffix_share" (Option.bind (J.member "suffix_share" j) J.as_float)
  in
  Ok { workload; mode; throughput; abort_rate; p99_latency; prefix_share; suffix_share }

let of_json j =
  let* schema = req "schema" (Option.bind (J.member "schema" j) J.as_string) in
  let* () = if schema = "stx-bench" then Ok () else Error ("bench snapshot: schema is " ^ schema ^ ", wanted stx-bench") in
  let* version = req "version" (Option.bind (J.member "version" j) J.as_int) in
  let* () =
    if version = schema_version then Ok ()
    else
      Error
        (Printf.sprintf "bench snapshot: version %d, this build reads %d"
           version schema_version)
  in
  let* seed = req "seed" (Option.bind (J.member "seed" j) J.as_int) in
  let* scale = req "scale" (Option.bind (J.member "scale" j) J.as_float) in
  let* threads = req "threads" (Option.bind (J.member "threads" j) J.as_int) in
  let* entries = req "entries" (Option.bind (J.member "entries" j) J.as_list) in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = entry_of_json e in
        Ok (e :: acc))
      (Ok []) entries
  in
  Ok { schema_version = version; seed; scale; threads; entries = List.rev entries }

let of_json_string s =
  match J.parse s with Ok j -> of_json j | Error e -> Error ("bench snapshot: " ^ e)

let write t ~file =
  let oc = open_out file in
  output_string oc (to_json_string t);
  output_char oc '\n';
  close_out oc

let read ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | s -> of_json_string s
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* rendering *)

let render t =
  let tbl =
    Table.create
      [
        "Benchmark"; "Mode"; "thr (c/Mcyc)"; "abort rate"; "p99 lat";
        "prefix%"; "suffix%";
      ]
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        [
          e.workload;
          e.mode;
          Table.fmt_f ~dec:1 e.throughput;
          Table.fmt_pct ~dec:1 (100. *. e.abort_rate);
          string_of_int e.p99_latency;
          Table.fmt_pct ~dec:1 (100. *. e.prefix_share);
          Table.fmt_pct ~dec:1 (100. *. e.suffix_share);
        ])
    t.entries;
  Printf.sprintf
    "Bench suite (seed %d, scale %g, %d threads): throughput in commits per\n\
     million simulated cycles; prefix/suffix as shares of committed tx cycles.\n"
    t.seed t.scale t.threads
  ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* regression gating *)

type verdict = Improved | Neutral | Regressed | Added | Removed

type comparison = {
  c_workload : string;
  c_mode : string;
  c_old : entry option;
  c_new : entry option;
  ratio : float;
  verdict : verdict;
}

let verdict_label = function
  | Improved -> "improved"
  | Neutral -> "ok"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

let compare_runs ?(threshold = 0.2) ~baseline fresh =
  if not (threshold > 0. && threshold < 1.) then
    invalid_arg "Bench.compare_runs: threshold must be in (0, 1)";
  let key (e : entry) = (e.workload, e.mode) in
  let index entries =
    let h = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace h (key e) e) entries;
    h
  in
  let old_by = index baseline.entries and new_by = index fresh.entries in
  let keys =
    List.sort_uniq compare
      (List.map key baseline.entries @ List.map key fresh.entries)
  in
  List.map
    (fun ((w, m) as k) ->
      let c_old = Hashtbl.find_opt old_by k in
      let c_new = Hashtbl.find_opt new_by k in
      let ratio, verdict =
        match (c_old, c_new) with
        | None, Some _ -> (nan, Added)
        | Some _, None -> (nan, Removed)
        | None, None -> assert false
        | Some o, Some n ->
          if o.throughput = 0. && n.throughput = 0. then (1., Neutral)
          else
            let r = n.throughput /. o.throughput in
            if r < 1. -. threshold then (r, Regressed)
            else if r > 1. +. threshold then (r, Improved)
            else (r, Neutral)
      in
      { c_workload = w; c_mode = m; c_old; c_new; ratio; verdict })
    keys

let regressions = List.filter (fun c -> c.verdict = Regressed)

let render_compare comparisons =
  let tbl =
    Table.create
      [ "Benchmark"; "Mode"; "baseline thr"; "new thr"; "ratio"; "verdict" ]
  in
  let thr = function Some e -> Table.fmt_f ~dec:1 e.throughput | None -> "-" in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.c_workload;
          c.c_mode;
          thr c.c_old;
          thr c.c_new;
          (if Float.is_nan c.ratio then "-" else Table.fmt_f ~dec:2 c.ratio);
          verdict_label c.verdict;
        ])
    comparisons;
  let count v = List.length (List.filter (fun c -> c.verdict = v) comparisons) in
  Table.render tbl
  ^ Printf.sprintf
      "%d cells: %d ok, %d improved, %d regressed, %d added, %d removed\n"
      (List.length comparisons) (count Neutral) (count Improved)
      (count Regressed) (count Added) (count Removed)

let workload_names ws = List.map (fun (w : Workload.t) -> w.Workload.name) ws

open Stx_sim
module Trace = Stx_trace.Trace

(* A thin renderer: the events live in a Trace; rendering replays the
   window and reconstructs each lane. *)

type t = Trace.t

let create ~threads = Trace.create ~threads ()
let of_trace tr = tr
let handler = Trace.handler

let render ?(width = 100) ?(from_time = 0) ?until_time t =
  let threads = Trace.threads t in
  let tmax =
    match until_time with
    | Some u -> u
    | None ->
      let m = ref (from_time + 1) in
      Trace.iter t (fun ~time _ -> if time > !m then m := time);
      !m
  in
  let span = max 1 (tmax - from_time) in
  let col time = min (width - 1) (max 0 ((time - from_time) * width / span)) in
  let lanes = Array.init threads (fun _ -> Bytes.make width '.') in
  let state = Array.make threads `Idle in
  (* irrevocable mode survives the begin that follows Tx_irrevocable and
     ends at the commit *)
  let irrev = Array.make threads false in
  let last_col = Array.make threads 0 in
  let background = function
    | `Idle -> '.'
    | `Tx -> '='
    | `Irrev -> 'I'
    | `Stm -> 'S'
    | `Wait -> 'w'
    | `Backoff -> 'b'
  in
  let fill tid upto ch =
    for c = last_col.(tid) to min (width - 1) upto do
      if Bytes.get lanes.(tid) c = '.' then Bytes.set lanes.(tid) c ch
    done
  in
  let transition tid ev =
    match ev with
    | Machine.Tx_begin _ ->
      state.(tid) <- (if irrev.(tid) then `Irrev else `Tx);
      None
    | Machine.Tx_commit _ ->
      state.(tid) <- `Idle;
      irrev.(tid) <- false;
      Some 'C'
    | Machine.Tx_abort _ ->
      (* what follows an abort is backoff (or the global-lock spin), not
         transactional work: render it as a stall, not as '=' *)
      state.(tid) <- `Backoff;
      Some 'X'
    | Machine.Tx_irrevocable _ ->
      irrev.(tid) <- true;
      None
    | Machine.Lock_acquired _ ->
      state.(tid) <- `Tx;
      Some 'L'
    | Machine.Lock_waiting _ ->
      state.(tid) <- `Wait;
      Some 'w'
    | Machine.Lock_timeout _ ->
      (* a timed-out waiter resumes its transaction *)
      state.(tid) <- `Tx;
      Some 'T'
    | Machine.Backoff_start _ ->
      state.(tid) <- `Backoff;
      None
    | Machine.Stm_begin _ ->
      state.(tid) <- `Stm;
      None
    | Machine.Stm_commit _ ->
      state.(tid) <- `Idle;
      Some 'C'
    | Machine.Stm_abort _ ->
      state.(tid) <- `Backoff;
      Some 'X'
    | Machine.Backoff_end _ | Machine.Alp_executed _ | Machine.Lock_attempt _
    | Machine.Lock_released _ | Machine.Req_dispatch _ | Machine.Req_done _ ->
      None
  in
  Trace.iter t (fun ~time ev ->
      let tid =
        match ev with
        | Machine.Tx_begin { tid; _ }
        | Machine.Tx_commit { tid; _ }
        | Machine.Tx_abort { tid; _ }
        | Machine.Tx_irrevocable { tid; _ }
        | Machine.Alp_executed { tid; _ }
        | Machine.Lock_attempt { tid; _ }
        | Machine.Lock_acquired { tid; _ }
        | Machine.Lock_released { tid; _ }
        | Machine.Lock_waiting { tid; _ }
        | Machine.Lock_timeout { tid; _ }
        | Machine.Backoff_start { tid }
        | Machine.Backoff_end { tid }
        | Machine.Req_dispatch { tid; _ }
        | Machine.Req_done { tid; _ }
        | Machine.Stm_begin { tid; _ }
        | Machine.Stm_commit { tid; _ }
        | Machine.Stm_abort { tid; _ } -> tid
      in
      if tid >= 0 && tid < threads && time <= tmax then
        if time < from_time then
          (* before the window: replay the state change so the window opens
             in the right state, but paint nothing — a pre-window event
             must not leave a marker at column 0 *)
          ignore (transition tid ev)
        else begin
          let c = col time in
          fill tid (c - 1) (background state.(tid));
          (match transition tid ev with
          | Some marker -> Bytes.set lanes.(tid) c marker
          | None -> ());
          last_col.(tid) <- c + 1
        end);
  Array.iteri (fun tid _ -> fill tid (width - 1) (background state.(tid))) lanes;
  let buf = Buffer.create ((width + 8) * threads) in
  Buffer.add_string buf
    (Printf.sprintf
       "cycles %d..%d  (. idle  = in-tx  I irrevocable  S stm  w waiting  b \
        backoff  X abort  C commit  L lock  T timeout)\n"
       from_time tmax);
  Array.iteri
    (fun tid lane ->
      Buffer.add_string buf (Printf.sprintf "t%-2d |%s|\n" tid (Bytes.to_string lane)))
    lanes;
  Buffer.contents buf

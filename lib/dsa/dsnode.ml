type t = {
  nid : int;
  mutable rep : t option;
  mutable nty : string option;
  mutable collapsed : bool;
  mutable arr : bool;
  edges_tbl : (int, t) Hashtbl.t;
}

(* Node ids are domain-local and reset per analysis (see {!reset_ids}):
   parallel compiles in separate domains must not share a counter, and the
   absolute id values feed hashtable iteration order downstream (anchor
   parent completion), so a compile's output must not depend on how many
   nodes earlier compiles in the same process allocated. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get counter_key := 0

let fresh ?ty () =
  let counter = Domain.DLS.get counter_key in
  incr counter;
  {
    nid = !counter;
    rep = None;
    nty = ty;
    collapsed = false;
    arr = false;
    edges_tbl = Hashtbl.create 4;
  }

let rec find n =
  match n.rep with
  | None -> n
  | Some p ->
    let r = find p in
    if r != p then n.rep <- Some r;
    r

let id n = (find n).nid
let same a b = find a == find b
let ty n = (find n).nty
let is_collapsed n = (find n).collapsed
let is_array n = (find n).arr
let set_array n = (find n).arr <- true

(* Unification uses an explicit worklist: merging two nodes requires merging
   corresponding edge targets, and cyclic structures (lists, trees with
   parent pointers) would otherwise recurse forever. *)

let rec process_pairs = function
  | [] -> ()
  | (a, b) :: rest ->
    let a = find a and b = find b in
    if a == b then process_pairs rest
    else begin
      (* keep [a] as the representative *)
      b.rep <- Some a;
      let more = ref rest in
      (* type merge *)
      (match (a.nty, b.nty) with
      | None, Some t -> a.nty <- Some t
      | Some ta, Some tb when ta <> tb -> a.collapsed <- true
      | _ -> ());
      if b.collapsed then a.collapsed <- true;
      a.arr <- a.arr || b.arr;
      (* edge merge *)
      Hashtbl.iter
        (fun f target ->
          let f = if a.collapsed then 0 else f in
          match Hashtbl.find_opt a.edges_tbl f with
          | Some existing -> more := (existing, target) :: !more
          | None -> Hashtbl.replace a.edges_tbl f target)
        b.edges_tbl;
      (* a collapsed node keeps a single edge on field 0 *)
      if a.collapsed then begin
        let all = Hashtbl.fold (fun _ t acc -> t :: acc) a.edges_tbl [] in
        match all with
        | [] -> ()
        | first :: others ->
          Hashtbl.reset a.edges_tbl;
          Hashtbl.replace a.edges_tbl 0 first;
          List.iter (fun o -> more := (first, o) :: !more) others
      end;
      process_pairs !more
    end

let unify a b = process_pairs [ (a, b) ]

let collapse n =
  let n = find n in
  if not n.collapsed then begin
    n.collapsed <- true;
    let all = Hashtbl.fold (fun _ t acc -> t :: acc) n.edges_tbl [] in
    Hashtbl.reset n.edges_tbl;
    match all with
    | [] -> ()
    | first :: others ->
      Hashtbl.replace n.edges_tbl 0 first;
      List.iter (fun o -> unify first o) others
  end

let set_type n t =
  let n = find n in
  match n.nty with
  | None -> n.nty <- Some t
  | Some existing -> if existing <> t then collapse n

let field_key n f = if (find n).collapsed then 0 else f

let edge n f =
  let n = find n in
  Option.map find (Hashtbl.find_opt n.edges_tbl (field_key n f))

let edge_or_create n f ~ty =
  let n = find n in
  let f = field_key n f in
  match Hashtbl.find_opt n.edges_tbl f with
  | Some t -> find t
  | None ->
    let t = fresh ?ty () in
    Hashtbl.replace n.edges_tbl f t;
    t

let edges n =
  let n = find n in
  Hashtbl.fold (fun f t acc -> (f, find t) :: acc) n.edges_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

open Stx_tir

(** Whole-program Data Structure Analysis over TIR.

    Follows Lattner's DSA in the two stages the paper uses (§3.1): a
    {e local} stage builds a unification-based, field-sensitive points-to
    graph per function (a DSNode per abstract object, linked by pointer
    fields), and a {e bottom-up} stage clones each callee's graph into its
    callers at every call site, recording the callee-node → caller-node
    mapping that the unified-anchor-table construction later composes along
    call paths. The top-down stage is deliberately omitted, as in the
    paper ("we utilize only the result from stage 2").

    Recursive call-graph SCCs share one graph (arguments unify directly
    with parameter nodes), which is conservative but sound. *)

type t

val analyze : Ir.program -> t
(** Runs both stages. The program should already pass {!Verify.program}. *)

val call_sccs : Ir.program -> string list list
(** Strongly connected components of the call graph (direct and atomic
    calls), callees first — the bottom-up processing order of the analysis
    itself, exposed for clients that propagate their own per-function
    summaries the same way (e.g. {!Stx_analysis.Summary}). *)

val access_node : t -> int -> (Dsnode.t * int) option
(** [access_node t iid] — the DSNode and field accessed by the load/store
    with instruction id [iid], if the analysis saw one. *)

val reg_node : t -> string -> Ir.reg -> Dsnode.t option
(** The node a function's register points to, if any (for tests and
    diagnostics). *)

val map_callee_node : t -> call_iid:int -> Dsnode.t -> Dsnode.t
(** Translate a callee-graph node to the caller's graph across the call
    site with instruction id [call_iid]. Identity for same-SCC (recursive)
    calls and for nodes the mapping does not cover. *)

val accesses_analyzed : t -> int
(** Number of loads/stores the analysis classified (Table 3 bookkeeping). *)

(** Data structure nodes (DSNodes) — the abstract memory objects of the
    Data Structure Analysis.

    A DSNode summarizes a set of runtime objects that a pointer may target.
    Nodes are unified (Steensgaard-style union-find) as the analysis
    discovers aliasing; a node carries an optional struct type and, per
    pointer field, an outgoing edge to the node its instances point to.
    When incompatible types are unified the node {e collapses}: it becomes
    field-insensitive and all its edges merge onto field 0. *)

type t

val fresh : ?ty:string -> unit -> t

val reset_ids : unit -> unit
(** Reset the (domain-local) node-id counter. {!Dsa.analyze} calls this on
    entry so a program's analysis — and everything derived from node ids —
    is identical no matter which domain runs it or what was compiled
    before in the same process. *)

val find : t -> t
(** Union-find representative. All other accessors resolve through [find]. *)

val id : t -> int
(** Identity of the representative. *)

val same : t -> t -> bool

val ty : t -> string option
val is_collapsed : t -> bool
val is_array : t -> bool
val set_array : t -> unit

val set_type : t -> string -> unit
(** Assign or check the node's struct type; a mismatch collapses the node. *)

val edge : t -> int -> t option
(** Outgoing edge from field [f] (field 0 if collapsed). *)

val edge_or_create : t -> int -> ty:string option -> t
(** Get the field-[f] target, creating a fresh node (typed [ty]) if none. *)

val edges : t -> (int * t) list
(** All outgoing edges, field-sorted, targets resolved. *)

val unify : t -> t -> unit
(** Merge two nodes (and, transitively, corresponding edge targets). *)

val collapse : t -> unit

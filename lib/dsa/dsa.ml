open Stx_tir

type aval = { mutable node : Dsnode.t option; mutable field : int }

type fstate = {
  avals : aval array; (* per register *)
  mutable nodes : Dsnode.t list; (* registry of nodes created for this function *)
  ret : aval;
}

type t = {
  prog : Ir.program;
  states : (string, fstate) Hashtbl.t;
  access : (int, Dsnode.t * int) Hashtbl.t;
  (* call iid -> callee-node-id -> caller node; absent table = identity *)
  site_maps : (int, (int, Dsnode.t) Hashtbl.t) Hashtbl.t;
  alloc_memo : (int, Dsnode.t) Hashtbl.t; (* alloc-site iid -> node *)
  mutable analyzed : int;
}

(* --- call graph ------------------------------------------------------- *)

let callees_of (p : Ir.program) (f : Ir.func) =
  let acc = ref [] in
  Ir.iter_insts f (fun _ _ inst ->
      match inst.Ir.op with
      | Ir.Call (_, g, _) -> acc := g :: !acc
      | Ir.Atomic_call (_, ab, _) -> acc := p.Ir.atomics.(ab).Ir.ab_func :: !acc
      | _ -> ());
  !acc

(* Tarjan SCC. Components are collected as they complete; a component
   completes only after every component it can reach, so the collected
   order is callees-first once reversed back. *)
let sccs (p : Ir.program) =
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) p.Ir.funcs [] in
  let names = List.sort compare names in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if Hashtbl.mem p.Ir.funcs w then
          if not (Hashtbl.mem index w) then begin
            strong w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.find_opt on_stack w = Some true then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees_of p (Ir.find_func p v));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strong n) names;
  (* prepending as components complete leaves callers at the head; reverse
     so callees come first, as the bottom-up stage requires *)
  List.rev !components

(* --- per-function state ----------------------------------------------- *)

let fstate_of t fname =
  match Hashtbl.find_opt t.states fname with
  | Some s -> s
  | None ->
    let f = Ir.find_func t.prog fname in
    let s =
      {
        avals = Array.init f.Ir.nregs (fun _ -> { node = None; field = 0 });
        nodes = [];
        ret = { node = None; field = 0 };
      }
    in
    Hashtbl.add t.states fname s;
    s

let register_node st n = st.nodes <- n :: st.nodes

let pointee st (av : aval) ~ty =
  match av.node with
  | Some n ->
    (match ty with Some s -> Dsnode.set_type n s | None -> ());
    Dsnode.find n
  | None ->
    let n = Dsnode.fresh ?ty () in
    register_node st n;
    av.node <- Some n;
    n

(* assign (n, f) into an aval, unifying with previous contents *)
let assign_aval (av : aval) n f =
  match av.node with
  | None ->
    av.node <- Some n;
    av.field <- f
  | Some old ->
    Dsnode.unify old n;
    if av.field <> f then begin
      Dsnode.collapse n;
      av.field <- 0
    end

(* Steensgaard assignment [d := s]: the two registers may alias, so their
   abstract values unify symmetrically — in particular a parameter copied
   before its pointer-hood is known inherits the node discovered later. *)
let unify_avals (a : aval) (b : aval) =
  match (a.node, b.node) with
  | None, None -> ()
  | Some n, None ->
    b.node <- Some n;
    b.field <- a.field
  | None, Some n ->
    a.node <- Some n;
    a.field <- b.field
  | Some na, Some nb ->
    Dsnode.unify na nb;
    if a.field <> b.field then begin
      Dsnode.collapse na;
      a.field <- 0;
      b.field <- 0
    end

(* --- local transfer function ------------------------------------------ *)

let field_ptr_ty prog n f =
  match Dsnode.ty n with
  | None -> None
  | Some sname -> (
    if Dsnode.is_collapsed n then None
    else
      match Hashtbl.find_opt prog.Ir.structs sname with
      | None -> None
      | Some s ->
        if f < Types.size s then
          match (Types.field s f).Types.fkind with
          | Types.Ptr tname -> Some tname
          | Types.Scalar -> None
        else None)

let record_access t iid n f =
  if not (Hashtbl.mem t.access iid) then t.analyzed <- t.analyzed + 1;
  Hashtbl.replace t.access iid (n, f)

let process_simple t st (inst : Ir.inst) =
  let av r = st.avals.(r) in
  match inst.Ir.op with
  | Ir.Mov (d, Ir.Reg s) -> unify_avals (av s) (av d)
  | Ir.Mov (_, Ir.Imm _) | Ir.Bin _ | Ir.Intr _ | Ir.Alp _ -> ()
  | Ir.Gep (d, b, sname, f) ->
    let n = pointee st (av b) ~ty:(Some sname) in
    assign_aval (av d) n f
  | Ir.Idx (d, b, _, _) ->
    let n = pointee st (av b) ~ty:None in
    Dsnode.set_array n;
    assign_aval (av d) n 0
  | Ir.Alloc (d, sname) | Ir.Alloc_arr (d, sname, _) ->
    let n =
      match Hashtbl.find_opt t.alloc_memo inst.Ir.iid with
      | Some n -> Dsnode.find n
      | None ->
        let n = Dsnode.fresh ~ty:sname () in
        (match inst.Ir.op with Ir.Alloc_arr _ -> Dsnode.set_array n | _ -> ());
        Hashtbl.add t.alloc_memo inst.Ir.iid n;
        register_node st n;
        n
    in
    assign_aval (av d) n 0
  | Ir.Load (d, p) -> (
    let n = pointee st (av p) ~ty:None in
    let f = if Dsnode.is_collapsed n then 0 else (av p).field in
    record_access t inst.Ir.iid n f;
    match field_ptr_ty t.prog n f with
    | Some tname ->
      let tgt = Dsnode.edge_or_create n f ~ty:(Some tname) in
      register_node st tgt;
      assign_aval (av d) tgt 0
    | None -> (
      match Dsnode.edge n f with
      | Some tgt when Dsnode.is_collapsed n -> assign_aval (av d) tgt 0
      | _ -> ()))
  | Ir.Store (p, v) -> (
    let n = pointee st (av p) ~ty:None in
    let f = if Dsnode.is_collapsed n then 0 else (av p).field in
    record_access t inst.Ir.iid n f;
    match v with
    | Ir.Reg r -> (
      match (av r).node with
      | Some m ->
        let tgt = Dsnode.edge_or_create n f ~ty:(Dsnode.ty m) in
        register_node st tgt;
        Dsnode.unify tgt m
      | None -> ())
    | Ir.Imm _ -> ())
  | Ir.Call _ | Ir.Atomic_call _ -> ()

(* --- bottom-up stage --------------------------------------------------- *)

(* Deep-copy the callee's graph into the caller, returning the
   callee-node-id -> clone mapping covering the callee's whole registry. *)
let clone_graph ~into_st (callee_st : fstate) =
  let memo = Hashtbl.create 32 in
  let rec clone n =
    let r = Dsnode.find n in
    match Hashtbl.find_opt memo (Dsnode.id r) with
    | Some c -> c
    | None ->
      let c = Dsnode.fresh ?ty:(Dsnode.ty r) () in
      Hashtbl.add memo (Dsnode.id r) c;
      register_node into_st c;
      if Dsnode.is_collapsed r then Dsnode.collapse c;
      if Dsnode.is_array r then Dsnode.set_array c;
      List.iter
        (fun (f, tgt) ->
          Dsnode.unify (Dsnode.edge_or_create c f ~ty:None) (clone tgt))
        (Dsnode.edges r);
      c
  in
  let map = Hashtbl.create 32 in
  List.iter
    (fun n ->
      let c = clone n in
      Hashtbl.replace map (Dsnode.id n) c;
      (* members of a union-find class share the rep's id already; also key
         the original object's own creation path via its rep *)
      ignore c)
    callee_st.nodes;
  map

let unify_args t caller_st callee_name args dst_reg ~translate =
  let callee_st = fstate_of t callee_name in
  let callee = Ir.find_func t.prog callee_name in
  List.iteri
    (fun i arg ->
      if i < Array.length callee.Ir.params then
        match (callee_st.avals.(i).node, arg) with
        | Some pn, Ir.Reg r ->
          let caller_n = pointee caller_st caller_st.avals.(r) ~ty:None in
          Dsnode.unify (translate pn) caller_n
        | _ -> ())
    args;
  match (dst_reg, callee_st.ret.node) with
  | Some d, Some rn ->
    let caller_n = pointee caller_st caller_st.avals.(d) ~ty:None in
    Dsnode.unify (translate rn) caller_n
  | _ -> ()

let process_call t fname in_scc (inst : Ir.inst) =
  let caller_st = fstate_of t fname in
  let target, dst, args =
    match inst.Ir.op with
    | Ir.Call (d, g, args) -> (Some g, d, args)
    | Ir.Atomic_call (d, ab, args) ->
      (Some t.prog.Ir.atomics.(ab).Ir.ab_func, d, args)
    | _ -> (None, None, [])
  in
  match target with
  | None -> ()
  | Some g ->
    if List.mem g in_scc then
      (* recursive edge: share the callee's graph directly (identity map) *)
      unify_args t caller_st g args dst ~translate:Dsnode.find
    else begin
      let map =
        match Hashtbl.find_opt t.site_maps inst.Ir.iid with
        | Some m -> m
        | None ->
          let m = clone_graph ~into_st:caller_st (fstate_of t g) in
          Hashtbl.add t.site_maps inst.Ir.iid m;
          m
      in
      let translate n =
        match Hashtbl.find_opt map (Dsnode.id n) with
        | Some c -> Dsnode.find c
        | None -> Dsnode.find n
      in
      unify_args t caller_st g args dst ~translate
    end

let process_ret t fname =
  let st = fstate_of t fname in
  let f = Ir.find_func t.prog fname in
  Array.iter
    (fun b ->
      match b.Ir.term with
      | Ir.Ret (Some (Ir.Reg r)) -> (
        match st.avals.(r).node with
        | Some n -> (
          match st.ret.node with
          | None -> st.ret.node <- Some n
          | Some old -> Dsnode.unify old n)
        | None -> ())
      | _ -> ())
    f.Ir.blocks

let process_function t fname in_scc =
  let st = fstate_of t fname in
  let f = Ir.find_func t.prog fname in
  (* two local sweeps reach the flow-insensitive fixpoint for loops *)
  for _ = 1 to 2 do
    Ir.iter_insts f (fun _ _ inst ->
        process_simple t st inst;
        match inst.Ir.op with
        | Ir.Call _ | Ir.Atomic_call _ -> process_call t fname in_scc inst
        | _ -> ())
  done;
  process_ret t fname

let analyze prog =
  (* fresh, process-history-independent node ids per analysis (see Dsnode) *)
  Dsnode.reset_ids ();
  let t =
    {
      prog;
      states = Hashtbl.create 32;
      access = Hashtbl.create 256;
      site_maps = Hashtbl.create 64;
      alloc_memo = Hashtbl.create 64;
      analyzed = 0;
    }
  in
  let components = sccs prog in
  List.iter
    (fun scc ->
      (* iterate SCC members twice for mutual recursion *)
      for _ = 1 to if List.length scc > 1 then 2 else 1 do
        List.iter (fun fname -> process_function t fname scc) scc
      done)
    components;
  t

(* --- queries ------------------------------------------------------------ *)

let access_node t iid =
  Option.map
    (fun (n, f) ->
      let n = Dsnode.find n in
      ((n : Dsnode.t), if Dsnode.is_collapsed n then 0 else f))
    (Hashtbl.find_opt t.access iid)

let reg_node t fname r =
  match Hashtbl.find_opt t.states fname with
  | None -> None
  | Some st ->
    if r < 0 || r >= Array.length st.avals then None
    else Option.map Dsnode.find st.avals.(r).node

let map_callee_node t ~call_iid n =
  match Hashtbl.find_opt t.site_maps call_iid with
  | None -> Dsnode.find n
  | Some map -> (
    match Hashtbl.find_opt map (Dsnode.id n) with
    | Some c -> Dsnode.find c
    | None -> Dsnode.find n)

let accesses_analyzed t = t.analyzed

let call_sccs = sccs

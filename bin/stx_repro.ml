(* Reproduction driver: regenerate every table and figure of the paper's
   evaluation, plus the ablation studies.

   Simulation cells are executed by the Stx_runner domain pool (--jobs)
   and persisted in a content-addressed result store (--cache-dir /
   --no-cache), so re-runs are incremental. Both are transparent: the
   simulator is deterministic per (workload, mode, threads, seed, scale),
   so every jobs/cache combination prints byte-identical reports. *)

open Cmdliner
open Stx_harness

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~doc:"Workload size multiplier (1.0 = default inputs).")

let threads_arg =
  Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Simulated cores/threads.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ]
        ~doc:
          "Simulations to run in parallel (OCaml domains). Defaults to the \
           recommended domain count of this machine.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~doc:
          "Result-store directory (default: \\$STAGGERED_TM_CACHE, else \
           ~/.cache/staggered_tm).")

let no_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-cache" ] ~doc:"Neither read nor write the on-disk result store.")

let policy_term =
  let policy_arg =
    Arg.(
      value
      & opt string "requester-wins"
      & info [ "policy" ]
          ~doc:
            "Conflict-resolution policy: $(b,requester-wins), \
             $(b,responder-wins) or $(b,timestamp).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt string "unbounded"
      & info [ "capacity" ]
          ~doc:
            "HTM capacity policy: $(b,unbounded) or $(b,bounded:R:W) (hard \
             read/write-set line budgets).")
  in
  let fallback_arg =
    Arg.(
      value
      & opt string "polite"
      & info [ "fallback" ]
          ~doc:
            "Fallback policy: $(b,polite[:N]), \
             $(b,backoff[:N[:BASE[:MAXEXP[:SEED]]]]), or \
             $(b,htm-stm-lock[:N[:S]]) (alias $(b,stm)).")
  in
  let make p cap f =
    let axis flag parse v =
      match parse v with
      | Ok x -> x
      | Error msg ->
        Printf.eprintf "bad --%s %s: %s\n" flag v msg;
        exit 1
    in
    Stx_policy.make
      ~resolution:(axis "policy" Stx_policy.Resolution.of_string p)
      ~capacity:(axis "capacity" Stx_policy.Capacity.of_string cap)
      ~fallback:(axis "fallback" Stx_policy.Fallback.of_string f)
      ()
  in
  Term.(const make $ policy_arg $ capacity_arg $ fallback_arg)

let ctx_term =
  let make seed scale threads jobs cache_dir no_cache policy =
    let store =
      if no_cache then None else Some (Stx_runner.Store.create ?dir:cache_dir ())
    in
    Exp.create ~seed ~scale ~threads ~jobs ~policy ?store ()
  in
  Term.(
    const make $ seed_arg $ scale_arg $ threads_arg $ jobs_arg $ cache_dir_arg
    $ no_cache_arg $ policy_term)

let section title body =
  Printf.printf "==== %s ====\n%s\n%!" title body

let cmd_of name title cells render =
  let run c =
    Exp.prefetch ~progress:true c (cells c);
    section title (render c)
  in
  Cmd.v (Cmd.info name ~doc:title) Term.(const run $ ctx_term)

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Figure 1: the staggering schematic, from real runs")
    Term.(const (fun () -> section "Figure 1" (Reports.fig1 ())) $ const ())

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Simulator configuration (Table 2)")
    Term.(const (fun () -> section "Table 2" (Reports.table2 ())) $ const ())

let bench_arg =
  Arg.(
    value
    & opt string "genome"
    & info [ "bench" ] ~doc:"Benchmark name (see `stx_run --list`).")

let anchors_cmd =
  let run bench =
    match Stx_workloads.Registry.find bench with
    | Some w -> section ("anchor tables: " ^ bench) (Reports.anchor_tables w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v
    (Cmd.info "anchors" ~doc:"Unified anchor tables of a benchmark (Figure 3)")
    Term.(const run $ bench_arg)

let per_bench_cmd name doc cells render =
  let run c bench =
    match Stx_workloads.Registry.find bench with
    | Some w ->
      Exp.prefetch ~progress:true c (cells c w);
      section (name ^ ": " ^ bench) (render c w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ ctx_term $ bench_arg)

let scaling_cmd =
  per_bench_cmd "scaling" "Thread-count sweep for one benchmark"
    Reports.scaling_cells Reports.scaling

let profile_cmd =
  let format_arg =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,tsv).")
  in
  let run c bench format =
    match Stx_workloads.Registry.find bench with
    | None -> prerr_endline ("unknown benchmark " ^ bench)
    | Some w -> (
      Exp.prefetch ~progress:true c (Reports.profile_cells c w);
      match format with
      | "text" -> section ("profile: " ^ bench) (Reports.profile c w)
      | "tsv" -> print_string (Reports.profile_tsv c w)
      | f ->
        prerr_endline ("unknown format " ^ f ^ " (text|tsv)");
        exit 1)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Per-atomic-block phase profile: speculative prefix vs serialized \
          suffix (--format tsv for machine-readable rows)")
    Term.(const run $ ctx_term $ bench_arg $ format_arg)

let bench_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_stx.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the schema-versioned snapshot.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE.json"
          ~doc:
            "Compare this run against an earlier snapshot and exit non-zero \
             if any cell's throughput regressed past the threshold.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 0.2
      & info [ "threshold" ]
          ~doc:
            "Relative throughput change that counts as a regression or \
             improvement (0.2 = \u{00b1}20%).")
  in
  let run c out cmp threshold =
    Exp.prefetch ~progress:true c (Bench.suite_cells c);
    let t = Bench.suite c in
    Bench.write t ~file:out;
    print_string (Bench.render t);
    print_string (Bench.render_sim t.Bench.sims);
    Printf.printf "wrote %s\n%!" out;
    (* the absolute steady-state allocation bound holds with or without a
       baseline: the zero-allocation core must never creep back *)
    let violations = Bench.alloc_violations t in
    if violations <> [] then begin
      List.iter
        (fun e ->
          Printf.eprintf
            "ALLOCATION BUDGET EXCEEDED: %s allocates %.1f minor words per \
             simulated event (budget %.0f)\n"
            e.Bench.sim_workload e.Bench.sim_minor_words_per_event
            Bench.minor_words_budget)
        violations;
      exit 1
    end;
    match cmp with
    | None -> ()
    | Some file -> (
      match Bench.read ~file with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok baseline ->
        if
          (baseline.Bench.seed, baseline.Bench.scale, baseline.Bench.threads)
          <> (t.Bench.seed, t.Bench.scale, t.Bench.threads)
        then
          Printf.printf
            "note: baseline %s was taken at seed %d scale %g threads %d, this \
             run at seed %d scale %g threads %d\n"
            file baseline.Bench.seed baseline.Bench.scale
            baseline.Bench.threads t.Bench.seed t.Bench.scale t.Bench.threads;
        let cs = Bench.compare_runs ~threshold ~baseline t in
        print_string (Bench.render_compare cs);
        let ss = Bench.compare_sims ~threshold ~baseline t in
        print_string (Bench.render_compare_sims ss);
        if Bench.regressions cs <> [] || Bench.sim_regressions ss <> [] then
          exit 1)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the Figure 7 suite, write a machine-readable BENCH_stx.json \
          snapshot, and optionally gate against a baseline snapshot")
    Term.(const run $ ctx_term $ out_arg $ compare_arg $ threshold_arg)

let hotspots_cmd =
  per_bench_cmd "hotspots" "Top conflicting lines/PCs of one benchmark"
    Reports.hotspot_cells Reports.hotspots

let scaling_all_cmd =
  let run c =
    Exp.prefetch ~progress:true c
      (List.concat_map (Reports.scaling_cells c) Stx_workloads.Registry.all);
    List.iter
      (fun w -> section ("scaling: " ^ w.Stx_workloads.Workload.name) (Reports.scaling c w))
      Stx_workloads.Registry.all
  in
  Cmd.v (Cmd.info "scaling-all" ~doc:"Thread sweeps for every benchmark")
    Term.(const run $ ctx_term)

let fig7avg_cmd =
  let run c =
    section "Figure 7 (seed-averaged)"
      (Reports.fig7_repeated ~jobs:(Exp.jobs c) ?store:(Exp.store c)
         ~scale:(Exp.scale c) ~threads:(Exp.threads c) ())
  in
  Cmd.v
    (Cmd.info "fig7-avg" ~doc:"Figure 7 averaged over 5 seeds (paper methodology)")
    Term.(const run $ ctx_term)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "results" & info [ "out" ] ~doc:"Output directory.")
  in
  let run c out =
    Exp.prefetch ~progress:true c (Export.cells c);
    let paths = Export.write_all c ~dir:out in
    List.iter print_endline paths
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the evaluation data as TSV files")
    Term.(const run $ ctx_term $ out_arg)

let ablations_cmd =
  let run seed scale = section "ablations" (Ablations.all ~seed ~scale ()) in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablation studies")
    Term.(const run $ seed_arg $ scale_arg)

(* ---------------------------------------------------------------- *)
(* stx_repro lint: static conflict analysis + trace cross-validation *)

let lint_cmd =
  let open Stx_analysis in
  let bench_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "bench" ]
          ~doc:"Benchmark name, comma-separated list, or \"all\".")
  in
  let mode_arg =
    Arg.(
      value
      & opt string "both"
      & info [ "mode" ]
          ~doc:"Anchor-selection mode to lint: $(b,dsa), $(b,naive) or \
                $(b,both).")
  in
  let format_arg =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,tsv).")
  in
  let validate_arg =
    Arg.(
      value
      & flag
      & info [ "validate" ]
          ~doc:
            "Run a traced Staggered simulation per benchmark and \
             cross-validate the static conflict graph against the dynamic \
             conflict edges (non-zero exit on a soundness violation).")
  in
  let validate_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate-trace" ] ~docv:"FILE"
          ~doc:
            "Cross-validate against a raw event capture written by \
             $(b,stx_run --raw-trace). Single benchmark only; the \
             capture's workload metadata must match.")
  in
  let stripes_arg =
    Arg.(
      value
      & flag
      & info [ "stripes" ]
          ~doc:
            "Run the STX109 STM lock-stripe aliasing lint over the \
             validation trace: hot conflicting lines that hash onto the \
             same striped write-lock. Needs $(b,--validate) or \
             $(b,--validate-trace).")
  in
  let run c bench mode format validate vtrace stripes =
    let benches =
      if bench = "all" then Stx_workloads.Registry.all
      else
        List.map
          (fun name ->
            match Stx_workloads.Registry.find name with
            | Some w -> w
            | None ->
              prerr_endline ("unknown benchmark " ^ name);
              exit 1)
          (String.split_on_char ',' bench)
    in
    let modes =
      match mode with
      | "dsa" -> [ Stx_compiler.Anchors.Dsa_guided ]
      | "naive" -> [ Stx_compiler.Anchors.Naive ]
      | "both" -> [ Stx_compiler.Anchors.Dsa_guided; Stx_compiler.Anchors.Naive ]
      | m ->
        prerr_endline ("unknown mode " ^ m ^ " (dsa|naive|both)");
        exit 1
    in
    let format =
      match format with
      | "text" -> Driver.Text
      | "tsv" -> Driver.Tsv
      | f ->
        prerr_endline ("unknown format " ^ f ^ " (text|tsv)");
        exit 1
    in
    (match (vtrace, benches) with
    | Some _, _ :: _ :: _ ->
      prerr_endline "--validate-trace needs a single --bench";
      exit 1
    | _ -> ());
    if stripes && (not validate) && vtrace = None then begin
      prerr_endline "--stripes needs a trace: add --validate or --validate-trace";
      exit 1
    end;
    let mode_name = function
      | Stx_compiler.Anchors.Dsa_guided -> "dsa"
      | Stx_compiler.Anchors.Naive -> "naive"
    in
    let failed = ref false in
    let check_validation analysis v =
      print_string (Driver.render_validation ~format analysis v);
      if not (Validate.sound v) then failed := true
    in
    let check_stripes name tr =
      if stripes then begin
        let diags = Lints.stripe_aliasing tr in
        match format with
        | Driver.Text ->
          Printf.printf "== stripe aliasing: %s ==\n" name;
          if diags = [] then
            print_string "  no aliased stripes among hot conflicting lines\n"
          else
            List.iter
              (fun d -> Printf.printf "  %s\n" (Diag.render_text d))
              diags
        | Driver.Tsv ->
          List.iter
            (fun d -> Printf.printf "%s\t%s\n" name (Diag.render_tsv d))
            diags
      end
    in
    List.iter
      (fun w ->
        let analyses =
          List.map
            (fun m ->
              let spec =
                Stx_workloads.Workload.spec ~anchor_mode:m
                  ~scale:(Exp.scale c) w
              in
              let name =
                Printf.sprintf "%s/%s" w.Stx_workloads.Workload.name
                  (mode_name m)
              in
              ( m,
                spec,
                Driver.analyze ~name
                  ~resolution:(Exp.policy c).Stx_policy.resolution
                  ~capacity:(Exp.policy c).Stx_policy.capacity
                  spec.Stx_sim.Machine.compiled ))
            modes
        in
        List.iter
          (fun (_, _, a) ->
            print_string (Driver.render ~format a);
            print_string (Driver.render_layout ~format a);
            if Driver.has_errors a then failed := true)
          analyses;
        (* validation uses the Dsa_guided compile when linted, else the
           first one — the conflict graph is instrumentation-independent *)
        let _, vspec, vanalysis =
          match
            List.find_opt
              (fun (m, _, _) -> m = Stx_compiler.Anchors.Dsa_guided)
              analyses
          with
          | Some x -> x
          | None -> List.hd analyses
        in
        if validate then begin
          let threads = Exp.threads c in
          let cfg =
            Stx_machine.Config.with_cores threads Stx_machine.Config.default
          in
          let tr = Stx_trace.Trace.create ~threads () in
          let (_ : Stx_sim.Stats.t) =
            Stx_sim.Machine.run ~seed:(Exp.seed c)
              ~htm_policy:(Exp.policy c) ~cfg
              ~mode:Stx_core.Mode.Staggered_hw
              ~on_event:(Stx_trace.Trace.handler tr) vspec
          in
          check_validation vanalysis (Driver.validate vanalysis tr);
          check_stripes w.Stx_workloads.Workload.name tr
        end;
        match vtrace with
        | None -> ()
        | Some file ->
          let tr, meta = Stx_trace.Trace.read_events ~file in
          (match List.assoc_opt "workload" meta with
          | Some wl when wl <> w.Stx_workloads.Workload.name ->
            Printf.eprintf
              "capture %s was recorded on workload %s, not %s\n" file wl
              w.Stx_workloads.Workload.name;
            exit 1
          | _ -> ());
          check_validation vanalysis (Driver.validate vanalysis tr);
          check_stripes w.Stx_workloads.Workload.name tr)
      benches;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static conflict analysis: lint the compiler's anchor/ALP \
          decisions and (optionally) cross-validate the static conflict \
          graph against a simulation's dynamic conflicts")
    Term.(
      const run $ ctx_term $ bench_arg $ mode_arg $ format_arg $ validate_arg
      $ validate_trace_arg $ stripes_arg)

(* ---------------------------------------------------------------- *)
(* stx_repro policies: conflict-resolution comparison table          *)

let policies_cmd =
  let quick_arg =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:
            "Small inputs (scale 0.05, 4 threads) — the CI smoke \
             configuration.")
  in
  let run c bench quick =
    let w =
      match Stx_workloads.Registry.find bench with
      | Some w -> w
      | None ->
        prerr_endline ("unknown benchmark " ^ bench);
        exit 1
    in
    let scale = if quick then 0.05 else Exp.scale c in
    let threads = if quick then 4 else Exp.threads c in
    let seed = Exp.seed c in
    let base = Exp.policy c in
    let modes = [ Stx_core.Mode.Baseline; Stx_core.Mode.Staggered_hw ] in
    let failed = ref false in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "%s, seed %d, scale %g, %d threads (capacity %s, fallback %s)\n"
         w.Stx_workloads.Workload.name seed scale threads
         (Stx_policy.Capacity.to_string base.Stx_policy.capacity)
         (Stx_policy.Fallback.to_string base.Stx_policy.fallback));
    Buffer.add_string buf
      (Printf.sprintf "%-13s %-15s %8s %8s %9s %9s %6s %10s %12s  %s\n" "mode"
         "resolution" "commits" "aborts" "conflict" "capacity" "irrev"
         "ab/commit" "cycles" "checks");
    List.iter
      (fun mode ->
        let spec =
          Stx_workloads.Workload.spec
            ~instrument:(Stx_core.Mode.uses_alps mode) ~scale w
        in
        let cfg =
          Stx_machine.Config.with_cores threads Stx_machine.Config.default
        in
        List.iter
          (fun resolution ->
            let htm_policy = { base with Stx_policy.resolution } in
            let tr = Stx_trace.Trace.create ~threads () in
            let r =
              Stx_metrics.Run.simulate ~seed ~htm_policy ~cfg ~mode
                ~on_event:(Stx_trace.Trace.handler tr) spec
            in
            let s = r.Stx_metrics.Run.stats in
            let errs =
              (match Stx_trace.Trace.check tr s with
              | Ok () -> []
              | Error es -> List.map (fun e -> "trace: " ^ e) es)
              @
              match Stx_metrics.Collect.check r.Stx_metrics.Run.metrics s with
              | Ok () -> []
              | Error es -> List.map (fun e -> "metrics: " ^ e) es
            in
            if errs <> [] then failed := true;
            Buffer.add_string buf
              (Printf.sprintf "%-13s %-15s %8d %8d %9d %9d %6d %10.2f %12d  %s\n"
                 (Stx_core.Mode.to_string mode)
                 (Stx_policy.Resolution.to_string resolution)
                 s.Stx_sim.Stats.commits s.Stx_sim.Stats.aborts
                 s.Stx_sim.Stats.conflict_aborts
                 s.Stx_sim.Stats.capacity_aborts
                 s.Stx_sim.Stats.irrevocable_entries
                 (Stx_sim.Stats.aborts_per_commit s)
                 s.Stx_sim.Stats.total_cycles
                 (if errs = [] then "ok" else "FAILED"));
            List.iter
              (fun e -> Buffer.add_string buf ("    " ^ e ^ "\n"))
              errs)
          Stx_policy.Resolution.all)
      modes;
    section ("policies: " ^ bench) (Buffer.contents buf);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:
         "Compare the conflict-resolution policies (requester-wins, \
          responder-wins, timestamp) on one benchmark, cross-checking the \
          trace and metrics pipelines under each (non-zero exit on any \
          reconciliation failure)")
    Term.(const run $ ctx_term $ bench_arg $ quick_arg)

(* stx_repro hybrid: lock-only vs htm-stm-lock fallback comparison    *)

let hybrid_cmd =
  let quick_arg =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:
            "Small inputs (scale 0.05, 4 threads) — the CI smoke \
             configuration.")
  in
  let run c quick =
    let scale = if quick then 0.05 else Exp.scale c in
    let threads = if quick then 4 else Exp.threads c in
    let seed = Exp.seed c in
    let base = Exp.policy c in
    let hw_retries = 4 and stm_retries = 8 in
    let lock_only =
      { base with Stx_policy.fallback = Stx_policy.Fallback.Polite { retries = Some hw_retries } }
    in
    let hybrid =
      { base with
        Stx_policy.fallback =
          Stx_policy.Fallback.Stm_tier { retries = Some hw_retries; stm_retries } }
    in
    let modes =
      [ Stx_core.Mode.Baseline; Stx_core.Mode.Addr_only;
        Stx_core.Mode.Staggered_sw; Stx_core.Mode.Staggered_hw ]
    in
    let failed = ref false in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "seed %d, scale %g, %d threads: %s vs %s\n" seed scale threads
         (Stx_policy.Fallback.to_string lock_only.Stx_policy.fallback)
         (Stx_policy.Fallback.to_string hybrid.Stx_policy.fallback));
    Buffer.add_string buf
      (Printf.sprintf "%-11s %-13s %9s %7s %12s %9s %7s %7s %12s %7s  %s\n"
         "bench" "mode" "commits" "irrev" "cycles" "commits" "irrev" "stm"
         "cycles" "d-irrev" "checks");
    let cell w mode htm_policy =
      let spec =
        Stx_workloads.Workload.spec
          ~instrument:(Stx_core.Mode.uses_alps mode) ~scale w
      in
      let cfg = Stx_machine.Config.with_cores threads Stx_machine.Config.default in
      let tr = Stx_trace.Trace.create ~threads () in
      let r =
        Stx_metrics.Run.simulate ~seed ~htm_policy ~cfg ~mode
          ~on_event:(Stx_trace.Trace.handler tr) spec
      in
      let s = r.Stx_metrics.Run.stats in
      let errs =
        (match Stx_trace.Trace.check tr s with
        | Ok () -> []
        | Error es -> List.map (fun e -> "trace: " ^ e) es)
        @
        match Stx_metrics.Collect.check r.Stx_metrics.Run.metrics s with
        | Ok () -> []
        | Error es -> List.map (fun e -> "metrics: " ^ e) es
      in
      (s, errs)
    in
    List.iter
      (fun (w : Stx_workloads.Workload.t) ->
        List.iter
          (fun mode ->
            let ls, lerrs = cell w mode lock_only in
            let hs, herrs = cell w mode hybrid in
            let errs = lerrs @ herrs in
            if errs <> [] then failed := true;
            Buffer.add_string buf
              (Printf.sprintf
                 "%-11s %-13s %9d %7d %12d %9d %7d %7d %12d %7d  %s\n"
                 w.Stx_workloads.Workload.name
                 (Stx_core.Mode.to_string mode)
                 ls.Stx_sim.Stats.commits ls.Stx_sim.Stats.irrevocable_entries
                 ls.Stx_sim.Stats.total_cycles hs.Stx_sim.Stats.commits
                 hs.Stx_sim.Stats.irrevocable_entries
                 hs.Stx_sim.Stats.stm_commits hs.Stx_sim.Stats.total_cycles
                 (hs.Stx_sim.Stats.irrevocable_entries
                 - ls.Stx_sim.Stats.irrevocable_entries)
                 (if errs = [] then "ok" else "FAILED"));
            List.iter (fun e -> Buffer.add_string buf ("    " ^ e ^ "\n")) errs)
          modes)
      Stx_workloads.Registry.all;
    Buffer.add_string buf
      "left: lock-only fallback; right: htm-stm-lock. stm: software-tier \
       commits. d-irrev: hybrid minus lock-only irrevocable entries\n\
       (negative = the software tier absorbed work the global lock used to \
       serialize).\n";
    section "hybrid: lock-only vs htm-stm-lock" (Buffer.contents buf);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "hybrid"
       ~doc:
         "Compare the lock-only fallback against the htm-stm-lock software \
          tier on every benchmark and mode, cross-checking the trace and \
          metrics pipelines in every cell (non-zero exit on any \
          reconciliation failure)")
    Term.(const run $ ctx_term $ quick_arg)

let serve_cmd =
  let module Serve = Stx_serve.Serve in
  let module Arrival = Stx_serve.Arrival in
  let module Keys = Stx_serve.Keys in
  let rates_arg =
    Arg.(
      value
      & opt string "2,6,10,14"
      & info [ "rates" ]
          ~doc:
            "Comma-separated offered rates to sweep, requests per kilocycle \
             (Poisson arrivals).")
  in
  let serve_bench_arg =
    Arg.(
      value
      & opt string "memcached"
      & info [ "bench" ] ~doc:"Served workload (see `stx_serve --list`).")
  in
  let keys_arg =
    Arg.(
      value
      & opt string "zipf:0.9"
      & info [ "keys" ] ~doc:"Key popularity: $(b,uniform) or $(b,zipf:THETA).")
  in
  let horizon_arg =
    Arg.(
      value
      & opt int 50_000
      & info [ "horizon" ] ~doc:"Cycles during which requests arrive.")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Sub-runs per cell.")
  in
  let serve_seed_arg =
    Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Serving seed.")
  in
  let cores_arg =
    Arg.(
      value
      & opt string ""
      & info [ "cores" ]
          ~doc:
            "Comma-separated core counts to sweep (e.g. 16,32,64,128); \
             empty uses the context's thread count once.")
  in
  let shard_by_arg =
    Arg.(
      value
      & opt string "seed"
      & info [ "shard-by" ]
          ~doc:"Shard the request stream by $(b,seed) or by $(b,key) range.")
  in
  let run bench rates_s keys_s horizon shards threads seed jobs cores_s
      shard_by_s =
    let die msg =
      prerr_endline msg;
      exit 1
    in
    let service =
      match Stx_workloads.Registry.find_service bench with
      | Some s -> s
      | None -> die ("unknown service: " ^ bench ^ " (see stx_serve --list)")
    in
    let keys =
      match Keys.of_string keys_s with
      | Ok k -> k
      | Error e -> die ("bad --keys " ^ keys_s ^ ": " ^ e)
    in
    let shard_by =
      match Serve.shard_by_of_string shard_by_s with
      | Ok sb -> sb
      | Error e -> die ("bad --shard-by " ^ shard_by_s ^ ": " ^ e)
    in
    let rates =
      List.map
        (fun r ->
          match float_of_string_opt (String.trim r) with
          | Some f when f > 0.0 -> f
          | _ -> die ("bad rate: " ^ r))
        (String.split_on_char ',' rates_s)
    in
    let cores_list =
      if cores_s = "" then [ threads ]
      else
        List.map
          (fun c ->
            match int_of_string_opt (String.trim c) with
            | Some n when n >= 1 -> n
            | _ -> die ("bad core count: " ^ c))
          (String.split_on_char ',' cores_s)
    in
    let modes =
      [ Stx_core.Mode.Baseline; Stx_core.Mode.Addr_only;
        Stx_core.Mode.Staggered_sw; Stx_core.Mode.Staggered_hw ]
    in
    let buf = Buffer.create 2048 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pf "open-loop %s: Poisson arrivals, %s keys, 70%% get, horizon %d cycles,\n"
      bench keys_s horizon;
    pf "%d shards (%s-sharded), seed %d; rates in requests/kilocycle,\n"
      shards (Serve.shard_by_to_string shard_by) seed;
    pf "latencies in cycles (sojourn: arrival to commit)\n";
    let failed = ref false in
    List.iter
      (fun cores ->
        pf "\n-- %d cores --\n" cores;
        pf "%-8s %-13s %-9s %-8s %-8s %-8s %-8s %s\n" "offered" "mode"
          "achieved" "p50" "p95" "p99" "p99.9" "sat";
        List.iter
          (fun rate ->
            List.iter
              (fun mode ->
                let cfg =
                  Serve.config ~mode ~threads:cores ~seed ~keys ~horizon
                    ~shards ~shard_by
                    ~arrival:(Arrival.Poisson { rate }) service
                in
                let report = Serve.run ~jobs cfg in
                if report.Serve.errors <> [] then begin
                  failed := true;
                  List.iter (fun e -> pf "  RECONCILIATION: %s\n" e)
                    report.Serve.errors
                end;
                let q p =
                  match Serve.sojourn report with
                  | Some h -> Stx_metrics.Hist.quantile h p
                  | None -> 0
                in
                pf "%-8.2f %-13s %-9.2f %-8d %-8d %-8d %-8d %s\n"
                  report.Serve.offered
                  (Stx_core.Mode.to_string mode)
                  report.Serve.achieved (q 0.50) (q 0.95) (q 0.99) (q 0.999)
                  (if report.Serve.saturated then "yes" else ""))
              modes;
            pf "\n")
          rates)
      cores_list;
    section ("serve: " ^ bench) (Buffer.contents buf);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Offered-load sweep of the open-loop serving harness: achieved \
          throughput and sojourn-latency tail per runtime mode, showing \
          where each mode saturates, optionally swept over core counts \
          (non-zero exit on any reconciliation \
          failure)")
    Term.(
      const run $ serve_bench_arg $ rates_arg $ keys_arg $ horizon_arg
      $ shards_arg $ threads_arg $ serve_seed_arg $ jobs_arg $ cores_arg $ shard_by_arg)

(* ---------------------------------------------------------------- *)
(* stx_repro report: one run as a self-contained HTML file           *)

let report_cmd =
  let mode_arg =
    Arg.(
      value
      & opt string "Staggered"
      & info [ "mode" ] ~doc:"HTM | AddrOnly | Staggered+SW | Staggered.")
  in
  let window_arg =
    Arg.(
      value
      & opt int 1000
      & info [ "window" ] ~docv:"CYCLES"
          ~doc:"Telemetry window width in simulated cycles.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "stx_report.html"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the HTML report.")
  in
  let run c bench mode_s window out =
    let die msg =
      prerr_endline msg;
      exit 1
    in
    let w =
      match Stx_workloads.Registry.find bench with
      | Some w -> w
      | None -> die ("unknown benchmark " ^ bench)
    in
    let mode =
      match Stx_core.Mode.of_string mode_s with
      | Some m -> m
      | None -> die ("unknown mode: " ^ mode_s ^ " (HTM|AddrOnly|Staggered+SW|Staggered)")
    in
    if window < 1 then die "--window must be positive";
    let seed = Exp.seed c
    and scale = Exp.scale c
    and threads = Exp.threads c
    and htm_policy = Exp.policy c in
    let spec =
      Stx_workloads.Workload.spec ~instrument:(Stx_core.Mode.uses_alps mode)
        ~scale w
    in
    let cfg = Stx_machine.Config.with_cores threads Stx_machine.Config.default in
    let tr = Stx_trace.Trace.create ~threads () in
    let tc = Stx_telemetry.Collect.create ~window ~threads () in
    let r =
      Stx_metrics.Run.simulate ~seed ~htm_policy ~cfg ~mode
        ~on_event:(fun ~time ev ->
          Stx_trace.Trace.handler tr ~time ev;
          Stx_telemetry.Collect.handler tc ~time ev)
        spec
    in
    let stats = r.Stx_metrics.Run.stats in
    let series =
      Stx_telemetry.Collect.finalize ~horizon:stats.Stx_sim.Stats.total_cycles
        tc
    in
    let episodes = Stx_telemetry.Episodes.detect series in
    let prog = w.Stx_workloads.Workload.build () in
    let ab_name id =
      let atomics = prog.Stx_tir.Ir.atomics in
      if id >= 0 && id < Array.length atomics then
        Printf.sprintf "%d:%s" id atomics.(id).Stx_tir.Ir.ab_name
      else string_of_int id
    in
    let html =
      Htmlreport.render
        {
          Htmlreport.workload = w.Stx_workloads.Workload.name;
          mode;
          seed;
          scale;
          threads;
          policy = htm_policy;
          series;
          episodes;
          stats;
          registry = r.Stx_metrics.Run.metrics;
          attribution = Stx_trace.Trace.abort_attribution tr;
          ab_name;
        }
    in
    let oc = open_out_bin out in
    output_string oc html;
    close_out oc;
    Printf.printf "report: %s %s -> %s (%d bytes, %d windows, %d episodes)\n"
      w.Stx_workloads.Workload.name (Stx_core.Mode.to_string mode) out
      (String.length html)
      (Stx_telemetry.Series.length series)
      (List.length episodes);
    (* cache the artifact under a digest of everything its bytes depend
       on — the same freshness contract as the result store *)
    match Exp.store c with
    | None -> ()
    | Some store ->
      let key =
        Digest.to_hex
          (Digest.string
             (Printf.sprintf "report-v1 spec-v%d %s %s %d %h %d %d %s"
                Stx_runner.Job.spec_version w.Stx_workloads.Workload.name
                (Stx_core.Mode.to_string mode) seed scale threads window
                (Stx_policy.label htm_policy)))
      in
      (match Stx_runner.Store.load_blob store ~key with
      | Some old when old <> html ->
        Printf.printf
          "note: cached report %s differed and was refreshed (code drift \
           without a Job.spec_version bump?)\n"
          key
      | _ -> ());
      Stx_runner.Store.save_blob store ~key html;
      Printf.printf "cached: %s\n%!" (Stx_runner.Store.blob_path store ~key)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run one benchmark under one mode with tracing, metrics and \
          windowed telemetry, and render everything — time series with \
          episode annotations, per-core occupancy, conflict hot spots, the \
          per-atomic-block phase profile and the policy bundle — as a \
          single self-contained HTML file (inline CSS, hand-rolled SVG, no \
          external assets; byte-deterministic for a fixed seed)")
    Term.(const run $ ctx_term $ bench_arg $ mode_arg $ window_arg $ out_arg)

let all_cmd =
  let run c =
    Exp.prefetch ~progress:true c
      (Exp.standard_cells c @ Reports.table3_cells c);
    section "Table 2" (Reports.table2 ());
    section "Figure 1" (Reports.fig1 ());
    section "Table 1" (Reports.table1 c);
    section "Table 3" (Reports.table3 c);
    section "Table 4" (Reports.table4 c);
    section "Figure 7" (Reports.fig7 c);
    section "Figure 8" (Reports.fig8 c);
    section "Serialization granularity (Result 2)" (Reports.granularity c)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table and figure of the evaluation")
    Term.(const run $ ctx_term)

let () =
  let info =
    Cmd.info "stx_repro" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'Conflict Reduction in Hardware \
         Transactions Using Advisory Locks' (SPAA 2015)"
  in
  let cmds =
    [
      cmd_of "table1" "Table 1: baseline HTM contention" Reports.table1_cells
        Reports.table1;
      table2_cmd;
      cmd_of "table3" "Table 3: instrumentation statistics" Reports.table3_cells
        Reports.table3;
      cmd_of "table4" "Table 4: benchmark characteristics" Reports.table4_cells
        Reports.table4;
      cmd_of "granularity" "Whole-txn scheduling vs staggering (Result 2)"
        Reports.granularity_cells Reports.granularity;
      fig1_cmd;
      cmd_of "fig7" "Figure 7: performance comparison" Reports.fig7_cells
        Reports.fig7;
      cmd_of "fig8" "Figure 8: aborts and wasted cycles" Reports.fig8_cells
        Reports.fig8;
      anchors_cmd;
      scaling_cmd;
      scaling_all_cmd;
      hotspots_cmd;
      profile_cmd;
      bench_cmd;
      fig7avg_cmd;
      export_cmd;
      ablations_cmd;
      lint_cmd;
      policies_cmd;
      hybrid_cmd;
      serve_cmd;
      report_cmd;
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))

(* Reproduction driver: regenerate every table and figure of the paper's
   evaluation, plus the ablation studies.

   Simulation cells are executed by the Stx_runner domain pool (--jobs)
   and persisted in a content-addressed result store (--cache-dir /
   --no-cache), so re-runs are incremental. Both are transparent: the
   simulator is deterministic per (workload, mode, threads, seed, scale),
   so every jobs/cache combination prints byte-identical reports. *)

open Cmdliner
open Stx_harness

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~doc:"Workload size multiplier (1.0 = default inputs).")

let threads_arg =
  Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Simulated cores/threads.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ]
        ~doc:
          "Simulations to run in parallel (OCaml domains). Defaults to the \
           recommended domain count of this machine.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~doc:
          "Result-store directory (default: \\$STAGGERED_TM_CACHE, else \
           ~/.cache/staggered_tm).")

let no_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-cache" ] ~doc:"Neither read nor write the on-disk result store.")

let ctx_term =
  let make seed scale threads jobs cache_dir no_cache =
    let store =
      if no_cache then None else Some (Stx_runner.Store.create ?dir:cache_dir ())
    in
    Exp.create ~seed ~scale ~threads ~jobs ?store ()
  in
  Term.(
    const make $ seed_arg $ scale_arg $ threads_arg $ jobs_arg $ cache_dir_arg
    $ no_cache_arg)

let section title body =
  Printf.printf "==== %s ====\n%s\n%!" title body

let cmd_of name title cells render =
  let run c =
    Exp.prefetch ~progress:true c (cells c);
    section title (render c)
  in
  Cmd.v (Cmd.info name ~doc:title) Term.(const run $ ctx_term)

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Figure 1: the staggering schematic, from real runs")
    Term.(const (fun () -> section "Figure 1" (Reports.fig1 ())) $ const ())

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Simulator configuration (Table 2)")
    Term.(const (fun () -> section "Table 2" (Reports.table2 ())) $ const ())

let bench_arg =
  Arg.(
    value
    & opt string "genome"
    & info [ "bench" ] ~doc:"Benchmark name (see `stx_run --list`).")

let anchors_cmd =
  let run bench =
    match Stx_workloads.Registry.find bench with
    | Some w -> section ("anchor tables: " ^ bench) (Reports.anchor_tables w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v
    (Cmd.info "anchors" ~doc:"Unified anchor tables of a benchmark (Figure 3)")
    Term.(const run $ bench_arg)

let per_bench_cmd name doc cells render =
  let run c bench =
    match Stx_workloads.Registry.find bench with
    | Some w ->
      Exp.prefetch ~progress:true c (cells c w);
      section (name ^ ": " ^ bench) (render c w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ ctx_term $ bench_arg)

let scaling_cmd =
  per_bench_cmd "scaling" "Thread-count sweep for one benchmark"
    Reports.scaling_cells Reports.scaling

let hotspots_cmd =
  per_bench_cmd "hotspots" "Top conflicting lines/PCs of one benchmark"
    Reports.hotspot_cells Reports.hotspots

let scaling_all_cmd =
  let run c =
    Exp.prefetch ~progress:true c
      (List.concat_map (Reports.scaling_cells c) Stx_workloads.Registry.all);
    List.iter
      (fun w -> section ("scaling: " ^ w.Stx_workloads.Workload.name) (Reports.scaling c w))
      Stx_workloads.Registry.all
  in
  Cmd.v (Cmd.info "scaling-all" ~doc:"Thread sweeps for every benchmark")
    Term.(const run $ ctx_term)

let fig7avg_cmd =
  let run c =
    section "Figure 7 (seed-averaged)"
      (Reports.fig7_repeated ~jobs:(Exp.jobs c) ?store:(Exp.store c)
         ~scale:(Exp.scale c) ~threads:(Exp.threads c) ())
  in
  Cmd.v
    (Cmd.info "fig7-avg" ~doc:"Figure 7 averaged over 5 seeds (paper methodology)")
    Term.(const run $ ctx_term)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "results" & info [ "out" ] ~doc:"Output directory.")
  in
  let run c out =
    Exp.prefetch ~progress:true c (Export.cells c);
    let paths = Export.write_all c ~dir:out in
    List.iter print_endline paths
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the evaluation data as TSV files")
    Term.(const run $ ctx_term $ out_arg)

let ablations_cmd =
  let run seed scale = section "ablations" (Ablations.all ~seed ~scale ()) in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablation studies")
    Term.(const run $ seed_arg $ scale_arg)

let all_cmd =
  let run c =
    Exp.prefetch ~progress:true c
      (Exp.standard_cells c @ Reports.table3_cells c);
    section "Table 2" (Reports.table2 ());
    section "Figure 1" (Reports.fig1 ());
    section "Table 1" (Reports.table1 c);
    section "Table 3" (Reports.table3 c);
    section "Table 4" (Reports.table4 c);
    section "Figure 7" (Reports.fig7 c);
    section "Figure 8" (Reports.fig8 c);
    section "Serialization granularity (Result 2)" (Reports.granularity c)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table and figure of the evaluation")
    Term.(const run $ ctx_term)

let () =
  let info =
    Cmd.info "stx_repro" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'Conflict Reduction in Hardware \
         Transactions Using Advisory Locks' (SPAA 2015)"
  in
  let cmds =
    [
      cmd_of "table1" "Table 1: baseline HTM contention" Reports.table1_cells
        Reports.table1;
      table2_cmd;
      cmd_of "table3" "Table 3: instrumentation statistics" Reports.table3_cells
        Reports.table3;
      cmd_of "table4" "Table 4: benchmark characteristics" Reports.table4_cells
        Reports.table4;
      cmd_of "granularity" "Whole-txn scheduling vs staggering (Result 2)"
        Reports.granularity_cells Reports.granularity;
      fig1_cmd;
      cmd_of "fig7" "Figure 7: performance comparison" Reports.fig7_cells
        Reports.fig7;
      cmd_of "fig8" "Figure 8: aborts and wasted cycles" Reports.fig8_cells
        Reports.fig8;
      anchors_cmd;
      scaling_cmd;
      scaling_all_cmd;
      hotspots_cmd;
      fig7avg_cmd;
      export_cmd;
      ablations_cmd;
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))

(* Run one benchmark under one runtime configuration and print the
   statistics — the quick way to poke at the system. *)

open Cmdliner
open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

let print_stats name mode threads (s : Stats.t) =
  Printf.printf "%s / %s / %d threads\n" name (Mode.to_string mode) threads;
  Printf.printf "  commits            %d\n" s.Stats.commits;
  Printf.printf "  aborts             %d (conflict %d, lock-subscription %d, explicit %d, capacity %d)\n"
    s.Stats.aborts s.Stats.conflict_aborts s.Stats.lock_sub_aborts
    s.Stats.explicit_aborts s.Stats.capacity_aborts;
  Printf.printf "  aborts per commit  %.2f\n" (Stats.aborts_per_commit s);
  if s.Stats.stm_commits + s.Stats.stm_aborts + s.Stats.stm_conflict_aborts > 0 then begin
    Printf.printf
      "  stm tier           %d commits, %d aborts (validation %d, hw-owned %d, \
       lock-subscription %d)\n"
      s.Stats.stm_commits s.Stats.stm_aborts s.Stats.stm_validation_aborts
      s.Stats.stm_hw_owned_aborts s.Stats.stm_locksub_aborts;
    Printf.printf "  stm interference   %d hw aborts by stm commits, %d validation cycles\n"
      s.Stats.stm_conflict_aborts s.Stats.stm_validation_cycles
  end;
  Printf.printf "  irrevocable        %d (%.1f%%)\n" s.Stats.irrevocable_entries
    (Stats.pct_irrevocable s);
  Printf.printf "  cycles (makespan)  %d\n" s.Stats.total_cycles;
  Printf.printf "  useful cycles      %d\n" s.Stats.useful_cycles;
  Printf.printf "  wasted cycles      %d (W/U %.2f)\n" s.Stats.wasted_cycles
    (Stats.wasted_over_useful s);
  Printf.printf "  %% time in TM       %.0f%%\n" (Stats.pct_tx_time s);
  Printf.printf "  advisory locks     %d acquired, %d timeouts, %d wait cycles\n"
    s.Stats.lock_acquires s.Stats.lock_timeouts s.Stats.lock_wait_cycles;
  Printf.printf "  ALPs executed      %d (%d went for a lock)\n" s.Stats.alps_executed
    s.Stats.alps_lock_attempts;
  Printf.printf "  policy decisions   precise %d / coarse %d / promoted %d / training %d\n"
    s.Stats.precise s.Stats.coarse s.Stats.promoted s.Stats.training;
  if s.Stats.accuracy_total > 0 then
    Printf.printf "  anchor accuracy    %.1f%% (%d/%d)\n" (Stats.accuracy s)
      s.Stats.accuracy_hits s.Stats.accuracy_total;
  Printf.printf "  instructions       %d (%d transactional)\n%!" s.Stats.insts
    s.Stats.tx_insts

let print_per_ab (spec : Machine.spec) (s : Stats.t) =
  let atomics = spec.Machine.compiled.Stx_compiler.Pipeline.prog.Stx_tir.Ir.atomics in
  if Array.length atomics > 1 then begin
    Printf.printf "  per atomic block:\n";
    Array.iter
      (fun (a : Stx_tir.Ir.atomic) ->
        let ab = Stats.ab s a.Stx_tir.Ir.ab_id in
        Printf.printf "    %-24s commits %-7d aborts %-7d locks %-6d irrev %d\n"
          a.Stx_tir.Ir.ab_name ab.Stats.ab_commits ab.Stats.ab_aborts
          ab.Stats.ab_locks ab.Stats.ab_irrevocable)
      atomics
  end

let parse_policy resolution capacity fallback =
  let axis flag parse v =
    match parse v with
    | Ok x -> x
    | Error msg ->
      Printf.eprintf "bad --%s %s: %s\n" flag v msg;
      exit 1
  in
  Stx_policy.make
    ~resolution:(axis "policy" Stx_policy.Resolution.of_string resolution)
    ~capacity:(axis "capacity" Stx_policy.Capacity.of_string capacity)
    ~fallback:(axis "fallback" Stx_policy.Fallback.of_string fallback)
    ()

(* several benchmarks at once: fan out over the Stx_runner domain pool,
   print each stats block in the requested order *)
let run_many benches mode threads seed scale jobs policy =
  let open Stx_runner in
  let specs =
    List.map
      (fun w ->
        Job.make ~policy ~workload:w.Workload.name ~mode ~threads ~seed ~scale
          ())
      benches
  in
  let batch = Sweep.run_batch ~jobs ~progress:true specs in
  let failed = ref false in
  List.iter2
    (fun w (_, outcome) ->
      match outcome with
      | Pool.Done r ->
        let stats = r.Stx_metrics.Run.stats in
        print_stats w.Workload.name mode threads stats;
        let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w in
        print_per_ab spec stats;
        print_newline ()
      | Pool.Failed msg ->
        failed := true;
        Printf.printf "%s / %s / %d threads: FAILED: %s\n\n" w.Workload.name
          (Mode.to_string mode) threads msg
      | Pool.Timed_out s ->
        failed := true;
        Printf.printf "%s / %s / %d threads: timed out after %.1fs\n\n"
          w.Workload.name (Mode.to_string mode) threads s)
    benches batch.Sweep.results;
  if !failed then exit 1

let run list_benches bench mode threads seed scale trace raw_trace metrics
    telemetry telemetry_window lint jobs policy_s capacity_s fallback_s =
  let htm_policy = parse_policy policy_s capacity_s fallback_s in
  if list_benches then begin
    List.iter
      (fun w ->
        Printf.printf "%-10s %-14s %s\n" w.Workload.name w.Workload.source
          w.Workload.description)
      Registry.all;
    exit 0
  end;
  let benches =
    if bench = "all" then Registry.all
    else
      List.map
        (fun name ->
          match Registry.find name with
          | Some w -> w
          | None ->
            prerr_endline ("unknown benchmark: " ^ name ^ " (try --list)");
            exit 1)
        (String.split_on_char ',' bench)
  in
  let mode =
    match Mode.of_string mode with
    | Some m -> m
    | None ->
      prerr_endline ("unknown mode: " ^ mode ^ " (HTM|AddrOnly|Staggered+SW|Staggered)");
      exit 1
  in
  match benches with
  | [] ->
    prerr_endline "no benchmark given (try --list)";
    exit 1
  | _ :: _ :: _ ->
    if trace <> None || raw_trace <> None || metrics <> None || telemetry <> None
       || lint
    then begin
      prerr_endline
        "--trace/--raw-trace/--metrics/--telemetry/--lint need a single \
         benchmark";
      exit 1
    end;
    run_many benches mode threads seed scale jobs htm_policy
  | [ w ] ->
    if telemetry_window < 1 then begin
      prerr_endline "--telemetry-window must be positive";
      exit 1
    end;
    let cfg = Config.with_cores threads Config.default in
    (* telemetry always records a full trace too: the replay-equality
       check (online fold = trace replay) rides on every collection *)
    let tr =
      if trace <> None || raw_trace <> None || telemetry <> None then
        Some (Stx_trace.Trace.create ~threads ())
      else None
    in
    let telem =
      match telemetry with
      | Some _ ->
        Some (Stx_telemetry.Collect.create ~window:telemetry_window ~threads ())
      | None -> None
    in
    let collector =
      match metrics with
      | Some _ -> Some (Stx_metrics.Collect.create ~policy:htm_policy ())
      | None -> None
    in
    let on_event =
      let trace_h =
        match tr with
        | Some tr -> Stx_trace.Trace.handler tr
        | None -> fun ~time:_ _ -> ()
      in
      let chained =
        match collector with
        | None -> trace_h
        | Some c ->
          let metrics_h = Stx_metrics.Collect.handler c in
          fun ~time ev ->
            trace_h ~time ev;
            metrics_h ~time ev
      in
      match telem with
      | None -> chained
      | Some tc ->
        let telem_h = Stx_telemetry.Collect.handler tc in
        fun ~time ev ->
          chained ~time ev;
          telem_h ~time ev
    in
    let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w in
    let lint_errors =
      lint
      &&
      let a =
        Stx_analysis.Driver.analyze ~name:w.Workload.name
          ~capacity:htm_policy.Stx_policy.capacity spec.Machine.compiled
      in
      print_string (Stx_analysis.Driver.render a);
      print_string (Stx_analysis.Driver.render_layout a);
      Stx_analysis.Driver.has_errors a
    in
    let stats = Machine.run ~seed ~htm_policy ~cfg ~mode ~on_event spec in
    print_stats w.Workload.name mode threads stats;
    if not (Stx_policy.equal htm_policy Stx_policy.default) then
      Printf.printf "  policy             %s\n" (Stx_policy.label htm_policy);
    print_per_ab spec stats;
    (match (metrics, collector) with
    | Some file, Some c ->
      (* GC pressure is stamped on the exported copy only; the live
         registry must stay equal to a trace replay's *)
      let reg = Stx_metrics.Gcstats.stamp (Stx_metrics.Collect.registry c) in
      let oc = open_out file in
      output_string oc (Stx_metrics.Registry.to_json_string reg);
      output_char oc '\n';
      close_out oc;
      Printf.printf "  metrics            %d series -> %s\n"
        (Stx_metrics.Registry.cardinality reg) file;
      (match Stx_metrics.Collect.check reg stats with
      | Ok () ->
        Printf.printf "  metrics check      ok (registry reconciles with stats)\n%!"
      | Error errs ->
        Printf.printf "  metrics check      FAILED:\n";
        List.iter (fun e -> Printf.printf "    %s\n" e) errs;
        exit 1)
    | _ -> ());
    (match (telemetry, telem, tr) with
    | Some file, Some tc, Some tr ->
      let horizon = stats.Stats.total_cycles in
      let online = Stx_telemetry.Collect.finalize ~horizon tc in
      let replayed =
        Stx_telemetry.Collect.of_trace ~window:telemetry_window ~horizon tr
      in
      (* width/threads already live in the codec headers *)
      let meta =
        [
          ("workload", w.Workload.name);
          ("mode", Mode.to_string mode);
          ("seed", string_of_int seed);
          ("scale", string_of_float scale);
          ("policy", Stx_policy.label htm_policy);
        ]
      in
      let doc =
        if Filename.check_suffix file ".csv" then
          Stx_telemetry.Series.to_csv ~meta online
        else Stx_telemetry.Series.to_jsonl ~meta online
      in
      let oc = open_out file in
      output_string oc doc;
      close_out oc;
      Printf.printf "  telemetry          %d windows of %d cycles -> %s\n"
        (Stx_telemetry.Series.length online)
        telemetry_window file;
      List.iter
        (fun e ->
          Printf.printf "  episode            %s\n"
            (Stx_telemetry.Episodes.to_string online e))
        (Stx_telemetry.Episodes.detect online);
      if Stx_telemetry.Series.equal online replayed then
        Printf.printf "  telemetry check    ok (online = trace replay)\n%!"
      else begin
        Printf.printf "  telemetry check    FAILED:\n";
        List.iter
          (fun d -> Printf.printf "    %s\n" d)
          (Stx_telemetry.Series.diff online replayed);
        exit 1
      end
    | _ -> ());
    (match (raw_trace, tr) with
    | Some file, Some tr ->
      let meta =
        [
          ("workload", w.Workload.name);
          ("mode", Mode.to_string mode);
          ("threads", string_of_int threads);
          ("seed", string_of_int seed);
          ("scale", string_of_float scale);
          ("policy", Stx_policy.label htm_policy);
        ]
      in
      Stx_trace.Trace.write_events ~meta tr ~file;
      Printf.printf "  raw trace          %d events -> %s (stx_repro lint --validate-trace)\n"
        (Stx_trace.Trace.length tr) file
    | _ -> ());
    (match (trace, tr) with
    | Some file, Some tr -> (
      Stx_trace.Trace.write_chrome tr ~file;
      Printf.printf "  trace              %d events -> %s (chrome://tracing, Perfetto)\n"
        (Stx_trace.Trace.length tr) file;
      match Stx_trace.Trace.check tr stats with
      | Ok () -> Printf.printf "  trace check        ok (events reconcile with stats)\n%!"
      | Error errs ->
        Printf.printf "  trace check        FAILED:\n";
        List.iter (fun e -> Printf.printf "    %s\n" e) errs;
        exit 1)
    | _ -> ());
    if lint_errors then exit 1

let () =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available benchmarks.")
  in
  let bench_arg =
    Arg.(
      value
      & opt string "list-hi"
      & info [ "bench"; "b" ]
          ~doc:
            "Benchmark: a name, a comma-separated list, or \"all\". With \
             several benchmarks the runs fan out over --jobs domains.")
  in
  let mode_arg =
    Arg.(
      value
      & opt string "Staggered"
      & info [ "mode"; "m" ] ~doc:"HTM | AddrOnly | Staggered+SW | Staggered.")
  in
  let threads_arg =
    Arg.(value & opt int 16 & info [ "threads"; "t" ] ~doc:"Simulated threads.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed.") in
  let scale_arg =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Workload scale.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record every runtime event, write the stream to $(docv) as \
             Chrome trace_event JSON (open in chrome://tracing or Perfetto), \
             and cross-check the event stream against the printed statistics \
             (non-zero exit on divergence). Single benchmark only.")
  in
  let raw_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw-trace" ] ~docv:"FILE"
          ~doc:
            "Record every runtime event and write the stream to $(docv) in \
             the raw line-oriented codec, replayable by $(b,stx_repro lint \
             --validate-trace). Single benchmark only.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Collect the full metrics registry (latency/retry/set-size \
             histograms, advisory-lock wait and backoff distributions, the \
             per-atomic-block phase profile) during the run, write it to \
             $(docv) as a stable versioned JSON snapshot, and reconcile it \
             against the printed statistics (non-zero exit on divergence). \
             Single benchmark only.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Collect a tumbling-window time series (commits, aborts by kind, \
             lock waits, tier occupancy, per-core busy cycles) during the \
             run, write it to $(docv) — CSV when the name ends in .csv, \
             JSON-lines otherwise — print detected episodes (conflict \
             storms, tier shifts), and cross-check the online series \
             against an offline trace replay (non-zero exit on divergence). \
             Single benchmark only.")
  in
  let telemetry_window_arg =
    Arg.(
      value
      & opt int 1000
      & info [ "telemetry-window" ] ~docv:"CYCLES"
          ~doc:"Telemetry window width in simulated cycles.")
  in
  let lint_arg =
    Arg.(
      value
      & flag
      & info [ "lint" ]
          ~doc:
            "Run the static conflict analysis over the compiled program and \
             print its report before simulating; exit non-zero if it emits \
             error diagnostics. Single benchmark only.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "jobs"; "j" ]
          ~doc:"Parallel simulations when several benchmarks are given.")
  in
  let policy_arg =
    Arg.(
      value
      & opt string "requester-wins"
      & info [ "policy" ]
          ~doc:
            "Conflict-resolution policy: requester-wins (the paper's \
             hardware), responder-wins (suicide on conflict with an \
             established owner), or timestamp (karma: the older transaction \
             wins).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt string "unbounded"
      & info [ "capacity" ]
          ~doc:
            "HTM capacity policy: unbounded, or bounded:R:W for a hard \
             limit of R read-set and W write-set cache lines (exceeding \
             either aborts with the capacity reason and goes straight to \
             the irrevocable fallback).")
  in
  let fallback_arg =
    Arg.(
      value
      & opt string "polite"
      & info [ "fallback" ]
          ~doc:
            "Fallback policy: polite[:N] (linear polite delay, irrevocable \
             after N attempts), backoff[:N[:BASE[:MAXEXP[:SEED]]]] \
             (exponential randomized backoff from a dedicated PRNG \
             stream), or htm-stm-lock[:N[:S]] (alias stm) — N hardware \
             attempts, then a TL2-style software tier for S attempts, \
             then the global lock.")
  in
  let term =
    Term.(
      const run $ list_arg $ bench_arg $ mode_arg $ threads_arg $ seed_arg
      $ scale_arg $ trace_arg $ raw_trace_arg $ metrics_arg $ telemetry_arg
      $ telemetry_window_arg $ lint_arg $ jobs_arg $ policy_arg $ capacity_arg
      $ fallback_arg)
  in
  let info =
    Cmd.info "stx_run" ~version:"1.0"
      ~doc:"Run one benchmark on the simulated HTM under a chosen runtime"
  in
  exit (Cmd.eval (Cmd.v info term))

(* Drive a workload open-loop: synthesize a seeded request stream, run it
   through the simulated machine's injector, and report SLO-style
   latency — what the closed-loop runner cannot measure. *)

open Cmdliner
open Stx_core
open Stx_workloads
module Serve = Stx_serve.Serve
module Arrival = Stx_serve.Arrival
module Keys = Stx_serve.Keys

let parse_policy resolution capacity fallback =
  let axis flag parse v =
    match parse v with
    | Ok x -> x
    | Error msg ->
      Printf.eprintf "bad --%s %s: %s\n" flag v msg;
      exit 1
  in
  Stx_policy.make
    ~resolution:(axis "policy" Stx_policy.Resolution.of_string resolution)
    ~capacity:(axis "capacity" Stx_policy.Capacity.of_string capacity)
    ~fallback:(axis "fallback" Stx_policy.Fallback.of_string fallback)
    ()

let run list_services bench arrival_s keys_s pct_get key_range horizon threads
    seed shards shard_by_s jobs mode_s metrics telemetry telemetry_window check
    policy_s capacity_s fallback_s =
  if list_services then begin
    List.iter
      (fun s ->
        let w = s.Workload.sv_bench in
        Printf.printf "%-10s %-14s %s\n" w.Workload.name w.Workload.source
          w.Workload.description)
      Registry.services;
    exit 0
  end;
  let die msg =
    prerr_endline msg;
    exit 1
  in
  let service =
    match Registry.find_service bench with
    | Some s -> s
    | None ->
      die
        ("unknown service: " ^ bench ^ " (one of "
        ^ String.concat ", " Registry.service_names
        ^ ")")
  in
  let arrival =
    match Arrival.of_string arrival_s with
    | Ok a -> a
    | Error e -> die ("bad --arrival " ^ arrival_s ^ ": " ^ e)
  in
  let keys =
    match Keys.of_string keys_s with
    | Ok k -> k
    | Error e -> die ("bad --keys " ^ keys_s ^ ": " ^ e)
  in
  let mode =
    match Mode.of_string mode_s with
    | Some m -> m
    | None -> die ("unknown mode: " ^ mode_s ^ " (HTM|AddrOnly|Staggered+SW|Staggered)")
  in
  let shard_by =
    match Serve.shard_by_of_string shard_by_s with
    | Ok sb -> sb
    | Error e -> die ("bad --shard-by " ^ shard_by_s ^ ": " ^ e)
  in
  let htm_policy = parse_policy policy_s capacity_s fallback_s in
  if telemetry_window < 1 then die "--telemetry-window must be positive";
  let telemetry_window =
    match telemetry with Some _ -> Some telemetry_window | None -> None
  in
  let cfg =
    Serve.config ~mode ~htm_policy ~threads ~seed ~keys ~pct_get ?key_range
      ~horizon ~shards ~shard_by ?telemetry_window ~arrival service
  in
  let report = Serve.run ~jobs cfg in
  print_string (Serve.render cfg report);
  (match (telemetry, report.Serve.telemetry) with
  | Some file, Some series ->
    let meta =
      [
        ("service", bench);
        ("mode", Mode.to_string mode);
        ("arrival", arrival_s);
        ("keys", keys_s);
        ("seed", string_of_int seed);
        ("shards", string_of_int shards);
        ("shard_by", Serve.shard_by_to_string shard_by);
        ("policy", Stx_policy.label htm_policy);
      ]
    in
    let doc =
      if Filename.check_suffix file ".csv" then
        Stx_telemetry.Series.to_csv ~meta series
      else Stx_telemetry.Series.to_jsonl ~meta series
    in
    let oc = open_out file in
    output_string oc doc;
    close_out oc;
    Printf.printf "  telemetry          %d windows -> %s\n"
      (Stx_telemetry.Series.length series)
      file;
    List.iter
      (fun e ->
        Printf.printf "  episode            %s\n"
          (Stx_telemetry.Episodes.to_string series e))
      (Stx_telemetry.Episodes.detect series)
  | _ -> ());
  (match metrics with
  | None -> ()
  | Some file ->
    let reg = Stx_metrics.Gcstats.stamp report.Serve.registry in
    let oc = open_out file in
    output_string oc (Stx_metrics.Registry.to_json_string reg);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  metrics            %d series -> %s\n"
      (Stx_metrics.Registry.cardinality reg)
      file);
  if report.Serve.errors <> [] then exit 1;
  if check then Printf.printf "  check              ok\n%!"

let () =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List workloads with a serving face.")
  in
  let bench_arg =
    Arg.(
      value
      & opt string "memcached"
      & info [ "bench"; "b" ] ~doc:"Workload to serve (see --list).")
  in
  let arrival_arg =
    Arg.(
      value
      & opt string "poisson:2"
      & info [ "arrival"; "a" ] ~docv:"PROC"
          ~doc:
            "Arrival process: $(b,fixed:RATE), $(b,poisson:RATE), or \
             $(b,bursty:RATE:ON:OFF). Rates are requests per kilocycle of \
             simulated time; bursty windows are in cycles.")
  in
  let keys_arg =
    Arg.(
      value
      & opt string "uniform"
      & info [ "keys"; "k" ] ~docv:"MODEL"
          ~doc:"Key popularity: $(b,uniform) or $(b,zipf:THETA).")
  in
  let pct_get_arg =
    Arg.(
      value
      & opt int 70
      & info [ "pct-get" ] ~doc:"Read share of the request mix, 0..100.")
  in
  let key_range_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "key-range" ]
          ~doc:"Key universe (default: the workload's own).")
  in
  let horizon_arg =
    Arg.(
      value
      & opt int 100_000
      & info [ "horizon" ] ~doc:"Cycles during which requests arrive.")
  in
  let threads_arg =
    Arg.(value & opt int 16 & info [ "threads"; "t" ] ~doc:"Cores per shard.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed.") in
  let shards_arg =
    Arg.(
      value
      & opt int 2
      & info [ "shards" ]
          ~doc:
            "Independent sub-runs, each at 1/shards of the offered rate. \
             Part of the experiment's identity (changing it changes the \
             result); parallelism comes from --jobs.")
  in
  let shard_by_arg =
    Arg.(
      value
      & opt string "seed"
      & info [ "shard-by" ] ~docv:"WHAT"
          ~doc:
            "$(b,seed): each shard serves the full key range at 1/shards of \
             the offered rate (independent sub-runs). $(b,key): the key \
             space is split into contiguous slices and each request is \
             routed to the shard owning its key, so skewed key popularity \
             loads shards unevenly.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "jobs"; "j" ]
          ~doc:"Domains running shards; never affects the result.")
  in
  let mode_arg =
    Arg.(
      value
      & opt string "Staggered"
      & info [ "mode"; "m" ] ~doc:"HTM | AddrOnly | Staggered+SW | Staggered.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the merged metrics registry (simulator series plus the \
             stx_req_* serving plane) to $(docv) as the versioned JSON \
             snapshot.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Collect a tumbling-window time series per shard (merged in \
             shard order, so --jobs never changes it), including the \
             serving plane — offered/completed per window, queue-depth \
             peaks, windowed sojourn sketches — write it to $(docv) (CSV \
             when the name ends in .csv, JSON-lines otherwise) and print \
             detected episodes (saturation onset, conflict storms, tier \
             shifts).")
  in
  let telemetry_window_arg =
    Arg.(
      value
      & opt int 1000
      & info [ "telemetry-window" ] ~docv:"CYCLES"
          ~doc:"Telemetry window width in simulated cycles.")
  in
  let check_arg =
    Arg.(
      value
      & flag
      & info [ "check" ]
          ~doc:
            "Print a confirmation line when the always-on reconciliation \
             (request lifecycle invariants and the metrics-vs-stats \
             cross-check in every shard) passes. Divergences exit non-zero \
             regardless.")
  in
  let policy_arg =
    Arg.(
      value
      & opt string "requester-wins"
      & info [ "policy" ] ~doc:"Conflict-resolution policy (see stx_run).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt string "unbounded"
      & info [ "capacity" ] ~doc:"HTM capacity policy (see stx_run).")
  in
  let fallback_arg =
    Arg.(
      value
      & opt string "polite"
      & info [ "fallback" ] ~doc:"Fallback policy (see stx_run).")
  in
  let term =
    Term.(
      const run $ list_arg $ bench_arg $ arrival_arg $ keys_arg $ pct_get_arg
      $ key_range_arg $ horizon_arg $ threads_arg $ seed_arg $ shards_arg
      $ shard_by_arg $ jobs_arg $ mode_arg $ metrics_arg $ telemetry_arg
      $ telemetry_window_arg $ check_arg $ policy_arg $ capacity_arg
      $ fallback_arg)
  in
  let info =
    Cmd.info "stx_serve" ~version:"1.0"
      ~doc:
        "Open-loop serving harness: request-driven load with SLO latency \
         reporting"
  in
  exit (Cmd.eval (Cmd.v info term))
